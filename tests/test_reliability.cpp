// Reliability tier tests: deterministic retry policy, config/builder
// validation (including the eager std::invalid_argument hardening of the
// builder setters), deadlines + retries, hedged reads, admission control,
// the transient-fault interaction (shared attempt budget, exactly-once
// accounting), and bit-identical results across repeated runs and sweep
// thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/predictive_scheduler.hpp"
#include "paper_example.hpp"
#include "power/fixed_threshold.hpp"
#include "power/policy.hpp"
#include "reliability/reliability.hpp"
#include "reliability/retry_policy.hpp"
#include "runner/emit.hpp"
#include "runner/experiment.hpp"
#include "runner/sweep.hpp"
#include "storage/storage_system.hpp"
#include "util/check.hpp"

namespace eas {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------- RetryPolicy

TEST(RetryPolicy, BackoffIsPureCappedAndJitterBounded) {
  const reliability::RetryPolicy p(0.010, 0.080, 0.5, 99);
  // Pure function of (seed, id, attempt): same inputs, same delay.
  EXPECT_EQ(p.backoff_delay(7, 2), p.backoff_delay(7, 2));
  // Different requests and different attempts draw different jitter.
  EXPECT_NE(p.backoff_delay(7, 2), p.backoff_delay(8, 2));
  EXPECT_NE(p.backoff_delay(7, 2), p.backoff_delay(7, 3));
  for (std::uint32_t attempt = 2; attempt <= 12; ++attempt) {
    const double raw = std::min(0.080, 0.010 * std::ldexp(1.0, attempt - 2));
    const double d = p.backoff_delay(42, attempt);
    EXPECT_GT(d, raw * 0.5);  // jitter shrinks by at most jitter_fraction
    EXPECT_LE(d, raw);
    EXPECT_LE(d, 0.080);  // cap
  }
}

TEST(RetryPolicy, ZeroJitterIsExactExponential) {
  const reliability::RetryPolicy p(0.010, 1.0, 0.0, 1);
  EXPECT_DOUBLE_EQ(p.backoff_delay(5, 2), 0.010);
  EXPECT_DOUBLE_EQ(p.backoff_delay(5, 3), 0.020);
  EXPECT_DOUBLE_EQ(p.backoff_delay(5, 4), 0.040);
}

// ------------------------------------------------------- config validation

TEST(ReliabilityConfig, ValidateRejectsNonsense) {
  reliability::ReliabilityConfig c;
  c.enabled = true;
  c.deadline_seconds = -1.0;
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.deadline_seconds = kNan;
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.max_attempts = 0;
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.backoff_cap_seconds = c.backoff_base_seconds / 2.0;  // cap < base
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.jitter_fraction = 1.5;
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.hedge_delay_seconds = -0.1;
  EXPECT_THROW(c.validate(), InvariantError);
  c = {};
  c.enabled = true;
  c.max_queue_depth = 8;
  c.backpressure_watermark = 0.0;  // outside (0, 1]
  EXPECT_THROW(c.validate(), InvariantError);
  // Disabled configs are never checked, whatever the other fields hold.
  c = {};
  c.deadline_seconds = kNan;
  EXPECT_NO_THROW(c.validate());
}

// ---------------------------------------- builder hardening (satellite: 1)

/// Expects `fn` to throw std::invalid_argument whose message names `field`.
template <typename Fn>
void expect_invalid_argument(Fn&& fn, const std::string& field) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument naming " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message does not name the field: " << e.what();
  }
}

TEST(ExperimentBuilder, ReliabilityRejectsBadFieldsByName) {
  using runner::ExperimentBuilder;
  expect_invalid_argument(
      [] {
        reliability::ReliabilityConfig c;
        c.deadline_seconds = kNan;
        ExperimentBuilder().reliability(c);
      },
      "reliability.deadline_seconds");
  expect_invalid_argument(
      [] {
        reliability::ReliabilityConfig c;
        c.backoff_base_seconds = -0.01;
        ExperimentBuilder().reliability(c);
      },
      "reliability.backoff_base_seconds");
  expect_invalid_argument(
      [] {
        reliability::ReliabilityConfig c;
        c.jitter_fraction = 2.0;
        ExperimentBuilder().reliability(c);
      },
      "reliability.jitter_fraction");
  expect_invalid_argument(
      [] {
        reliability::ReliabilityConfig c;
        c.hedge_delay_seconds = kInf;
        ExperimentBuilder().reliability(c);
      },
      "reliability.hedge_delay_seconds");
  expect_invalid_argument(
      [] {
        reliability::ReliabilityConfig c;
        c.max_attempts = 0;
        ExperimentBuilder().reliability(c);
      },
      "reliability.max_attempts");
  // A clean config passes and is enabled by the call.
  reliability::ReliabilityConfig ok;
  ok.deadline_seconds = 0.5;
  const auto p = runner::ExperimentBuilder().reliability(ok).build();
  EXPECT_TRUE(p.reliability.enabled);
  EXPECT_DOUBLE_EQ(p.reliability.deadline_seconds, 0.5);
}

TEST(ExperimentBuilder, CacheRejectsBadFieldsByName) {
  using runner::ExperimentBuilder;
  expect_invalid_argument(
      [] {
        cache::CacheConfig c;
        c.dram_latency_seconds = kNan;
        ExperimentBuilder().cache(c);
      },
      "cache.dram_latency_seconds");
  expect_invalid_argument(
      [] {
        cache::CacheConfig c;
        c.memory_watts_per_gib = -1.0;
        ExperimentBuilder().cache(c);
      },
      "cache.memory_watts_per_gib");
  expect_invalid_argument(
      [] {
        cache::CacheConfig c;
        c.high_watermark = kInf;
        ExperimentBuilder().cache(c);
      },
      "cache.high_watermark");
  expect_invalid_argument(
      [] {
        cache::CacheConfig c;
        c.destage_deadline_seconds = 0.0;
        ExperimentBuilder().cache(c);
      },
      "cache.destage_deadline_seconds");
  expect_invalid_argument(
      [] {
        cache::CacheConfig c;
        c.block_bytes = 0;
        ExperimentBuilder().cache(c);
      },
      "cache.block_bytes");
}

TEST(ExperimentBuilder, FailDiskAtRejectsBadTimesByName) {
  using runner::ExperimentBuilder;
  expect_invalid_argument(
      [] { ExperimentBuilder().fail_disk_at(0, kNan); }, "fail_disk_at.time");
  expect_invalid_argument(
      [] { ExperimentBuilder().fail_disk_at(0, -5.0); }, "fail_disk_at.time");
  expect_invalid_argument(
      [] { ExperimentBuilder().fail_disk_at(0, 5.0, -1.0); },
      "fail_disk_at.repair");
  expect_invalid_argument(
      [] { ExperimentBuilder().fail_disk_at(0, 5.0, kInf); },
      "fail_disk_at.repair");
}

// -------------------------------------------------------------- end to end

/// `n` same-size requests for `data` arriving `gap` seconds apart starting
/// at `start`.
trace::Trace burst(DataId data, int n, double start = 0.0, double gap = 0.0,
                   bool is_read = true) {
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < n; ++i) {
    trace::TraceRecord r;
    r.time = start + gap * i;
    r.data = data;
    r.size_bytes = 512 * 1024;
    r.is_read = is_read;
    recs.push_back(r);
  }
  return trace::Trace(std::move(recs));
}

storage::SystemConfig base_config() {
  storage::SystemConfig cfg;
  cfg.power = disk::example_power_params();
  cfg.initial_state = disk::DiskState::Idle;
  return cfg;
}

storage::RunResult run_static(const storage::SystemConfig& cfg,
                              const trace::Trace& trace) {
  core::StaticScheduler sched;
  power::AlwaysOnPolicy policy;
  return storage::run_online(cfg, testing::example_placement(), trace, sched,
                             policy);
}

TEST(ReliabilityRun, DisabledTierIsByteIdenticalWhateverItsFieldsSay) {
  const auto trace = burst(/*data=*/2, /*n=*/12);
  const auto a = run_static(base_config(), trace);
  storage::SystemConfig cfg = base_config();
  cfg.reliability.deadline_seconds = 0.001;  // would retry furiously...
  cfg.reliability.max_queue_depth = 1;       // ...and shed everything
  cfg.reliability.enabled = false;           // but the tier is off
  const auto b = run_static(cfg, trace);
  EXPECT_EQ(a.to_json(true), b.to_json(true));
  EXPECT_EQ(a.to_json(true).find("reliability"), std::string::npos);
}

TEST(ReliabilityRun, DeadlineMissesRetryToAnAlternateReplicaAndComplete) {
  // 30 reads of b3 (disks {0,1,3}) all at t=0, StaticScheduler -> all queue
  // on disk 0 at ~10 ms service each. A 30 ms per-attempt deadline pulls
  // the deep entries back and retries them on another replica.
  storage::SystemConfig cfg = base_config();
  cfg.reliability.enabled = true;
  cfg.reliability.deadline_seconds = 0.030;
  cfg.reliability.max_attempts = 6;
  cfg.reliability.backoff_base_seconds = 0.005;
  cfg.reliability.backoff_cap_seconds = 0.020;
  const auto r = run_static(cfg, burst(2, 30));
  EXPECT_TRUE(r.reliability_enabled);
  EXPECT_GT(r.reliability_stats.deadline_misses, 0u);
  EXPECT_GT(r.reliability_stats.retries, 0u);
  // Every request is accounted exactly once: completed or abandoned.
  EXPECT_EQ(r.total_requests + r.reliability_stats.abandoned, 30u);
  EXPECT_EQ(r.reliability_stats.shed, 0u);
  // Retries spread the flood across replicas: disk 0 no longer serves all.
  EXPECT_LT(r.disk_stats[0].requests_served, 30u);
}

TEST(ReliabilityRun, HedgedReadsWinOnABackloggedPrimaryAndCountOnce) {
  // 20 reads of b1 (disk 0 only, unhedgeable) backlog disk 0 ~200 ms deep;
  // 5 reads of b3 queue behind them. Their 15 ms hedges land on idle disk 1
  // and win while the primaries crawl the backlog.
  storage::SystemConfig cfg = base_config();
  cfg.reliability.enabled = true;
  cfg.reliability.hedge_delay_seconds = 0.015;
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < 20; ++i) {
    trace::TraceRecord rec;
    rec.data = 0;
    recs.push_back(rec);
  }
  for (int i = 0; i < 5; ++i) {
    trace::TraceRecord rec;
    rec.data = 2;
    recs.push_back(rec);
  }
  const auto r = run_static(cfg, trace::Trace(std::move(recs)));
  // Only the replicated reads can hedge, and every one of their hedges wins.
  EXPECT_EQ(r.reliability_stats.hedges_issued, 5u);
  EXPECT_EQ(r.reliability_stats.hedge_wins, 5u);
  // First-completion-wins must never double count a request.
  EXPECT_EQ(r.total_requests, 25u);
  EXPECT_EQ(r.response_times.count(), 25u);
  // The winner pool spans both disks.
  EXPECT_EQ(r.disk_stats[1].requests_served, 5u);
}

TEST(ReliabilityRun, AdmissionControlShedsOldestReadsUnderOverload) {
  storage::SystemConfig cfg = base_config();
  cfg.reliability.enabled = true;
  cfg.reliability.max_queue_depth = 3;
  const auto r = run_static(cfg, burst(2, 40));
  EXPECT_GT(r.reliability_stats.shed, 0u);
  EXPECT_EQ(r.total_requests + r.reliability_stats.shed, 40u);
  // Shed requests never produce a response sample.
  EXPECT_EQ(r.response_times.count(), r.total_requests);
}

TEST(ReliabilityRun, WritesDegradeToWriteThroughInsteadOfShedding) {
  storage::SystemConfig cfg = base_config();
  cfg.reliability.enabled = true;
  cfg.reliability.max_queue_depth = 3;
  const auto r = run_static(cfg, burst(2, 40, 0.0, 0.0, /*is_read=*/false));
  EXPECT_EQ(r.reliability_stats.shed, 0u);
  EXPECT_GT(r.reliability_stats.writes_degraded, 0u);
  EXPECT_EQ(r.total_requests, 40u);  // bounded queues never drop writes
}

TEST(ReliabilityRun, JsonCarriesTheTierBlockOnlyWhenEnabled) {
  storage::SystemConfig cfg = base_config();
  cfg.reliability.enabled = true;
  cfg.reliability.hedge_delay_seconds = 0.015;
  const auto r = run_static(cfg, burst(2, 10));
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"reliability\""), std::string::npos);
  EXPECT_NE(json.find("\"hedge_wins\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_misses\""), std::string::npos);
  EXPECT_NE(json.find("\"shed\""), std::string::npos);
}

// --------------------------------- transient faults (satellite: coverage)

/// A transient outage on disk 0 over [2, 5) with b3 reads queued when it
/// hits and arriving throughout.
storage::SystemConfig transient_config() {
  storage::SystemConfig cfg = base_config();
  fault::ScriptedFault f;
  f.kind = fault::ScriptedFault::Kind::kTransient;
  f.disk = 0;
  f.time = 2.0;
  f.duration = 3.0;
  cfg.fault.script.push_back(f);
  return cfg;
}

trace::Trace transient_trace() {
  // A queue on disk 0 at the moment the outage hits (burst just before
  // t=2), plus a steady stream across the outage and past recovery.
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < 6; ++i) {
    trace::TraceRecord r;
    r.time = 1.98;
    r.data = 2;
    r.size_bytes = 512 * 1024;
    r.is_read = true;
    recs.push_back(r);
  }
  for (int i = 0; i < 30; ++i) {
    trace::TraceRecord r;
    r.time = 0.5 + 0.25 * i;  // spans [0.5, 7.75]
    r.data = 2;
    r.size_bytes = 512 * 1024;
    r.is_read = true;
    recs.push_back(r);
  }
  return trace::Trace(std::move(recs));
}

TEST(TransientFault, QueuedRequestsFailOverAndEveryRequestCountsOnce) {
  const auto r = run_static(transient_config(), transient_trace());
  EXPECT_TRUE(r.faults_enabled);
  EXPECT_EQ(r.fault_stats.transient_timeouts, 1u);
  EXPECT_EQ(r.fault_stats.disk_failures, 0u);
  EXPECT_EQ(r.fault_stats.repairs, 1u);
  EXPECT_GT(r.fault_stats.failovers, 0u);  // drained queue + outage routing
  // b3 has replicas on disks 1 and 3, so nothing is unavailable and every
  // request completes exactly once — queued-at-outage ones included.
  EXPECT_EQ(r.fault_stats.unavailable_requests, 0u);
  EXPECT_EQ(r.total_requests, 36u);
  EXPECT_EQ(r.response_times.count(), 36u);
}

TEST(TransientFault, RecoveryRestoresServiceOnTheDisk) {
  const auto r = run_static(transient_config(), transient_trace());
  // Requests arriving after t=5 route back to the original location, so the
  // recovered disk serves part of the stream again.
  EXPECT_GT(r.disk_stats[0].requests_served, 0u);
  EXPECT_GT(r.disk_stats[1].requests_served, 0u);
}

TEST(TransientFault, RepeatedRunsAreBitIdentical) {
  const auto a = run_static(transient_config(), transient_trace());
  const auto b = run_static(transient_config(), transient_trace());
  EXPECT_EQ(a.to_json(true), b.to_json(true));
}

TEST(TransientFault, ReliabilityRetriesShareTheAttemptBudgetWithFailover) {
  // Same outage with the reliability tier on: deadline retries and the
  // failover of the drained queue draw one budget — the run must terminate
  // with every request accounted exactly once (completed or abandoned) and
  // never double-dispatched (total served >= completed is the only slack,
  // from in-service copies that a deadline could not pull back).
  storage::SystemConfig cfg = transient_config();
  cfg.reliability.enabled = true;
  cfg.reliability.deadline_seconds = 0.050;
  cfg.reliability.max_attempts = 3;
  cfg.reliability.backoff_base_seconds = 0.005;
  cfg.reliability.backoff_cap_seconds = 0.020;
  const auto r = run_static(cfg, transient_trace());
  EXPECT_TRUE(r.reliability_enabled);
  EXPECT_EQ(r.total_requests + r.reliability_stats.abandoned +
                r.fault_stats.unavailable_requests,
            36u);
  EXPECT_EQ(r.response_times.count(), r.total_requests);
  const auto again = run_static(cfg, transient_trace());
  EXPECT_EQ(r.to_json(true), again.to_json(true));
}

TEST(ReliabilityRun, SurvivesAFixedThresholdPolicyWithHedging) {
  // Hedge pins must hold the planned alternate spinning (and re-kick the
  // policy when released) — the run completes without stranding a disk.
  storage::SystemConfig cfg = base_config();
  cfg.initial_state = disk::DiskState::Standby;
  cfg.reliability.enabled = true;
  cfg.reliability.hedge_delay_seconds = 0.015;
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto r = storage::run_online(cfg, testing::example_placement(),
                                     burst(2, 20, 0.0, 0.5), sched, policy);
  EXPECT_EQ(r.total_requests, 20u);
  EXPECT_LE(r.reliability_stats.hedge_wins,
            r.reliability_stats.hedges_issued);
}

// ------------------------------------------------- scheduler backpressure

/// Scripted SystemView with per-disk snapshots and backpressure flags.
class ScriptedView final : public core::SystemView {
 public:
  explicit ScriptedView(placement::PlacementMap placement)
      : placement_(std::move(placement)),
        snapshots_(placement_.num_disks()),
        pressured_(placement_.num_disks(), false) {}

  double now() const override { return now_; }
  const placement::PlacementMap& placement() const override {
    return placement_;
  }
  core::DiskSnapshot snapshot(DiskId k) const override {
    return snapshots_.at(k);
  }
  const disk::DiskPowerParams& power_params() const override { return power_; }
  bool backpressured(DiskId k) const override { return pressured_.at(k); }

  void set_now(double t) { now_ = t; }
  core::DiskSnapshot& at(DiskId k) { return snapshots_.at(k); }
  void set_backpressured(DiskId k, bool on) { pressured_.at(k) = on; }

 private:
  placement::PlacementMap placement_;
  std::vector<core::DiskSnapshot> snapshots_;
  std::vector<bool> pressured_;
  double now_ = 0.0;
  disk::DiskPowerParams power_ = testing::example_power();
};

TEST(Backpressure, CostSchedulerRoutesAroundABackpressuredDisk) {
  // b2 (data 1) lives on disks {0, 1}. Disk 0 is the cheaper idle window;
  // marking it backpressured multiplies its cost past disk 1's.
  ScriptedView view(testing::example_placement());
  view.set_now(50.0);
  view.at(0).state = disk::DiskState::Idle;
  view.at(0).state_since = 0.0;
  view.at(0).last_request_time = 40.0;  // 10 J idle extension
  view.at(1).state = disk::DiskState::Idle;
  view.at(1).state_since = 0.0;
  view.at(1).last_request_time = 20.0;  // 30 J idle extension
  disk::Request r;
  r.id = 1;
  r.data = 1;
  core::CostFunctionScheduler sched(core::CostParams{1.0, 100.0});
  EXPECT_EQ(sched.pick(r, view), 0u);
  view.set_backpressured(0, true);  // 10 J * 4 > 30 J
  EXPECT_EQ(sched.pick(r, view), 1u);
  view.set_backpressured(0, false);
  EXPECT_EQ(sched.pick(r, view), 0u);
}

TEST(Backpressure, PredictiveSchedulerAppliesTheSamePenalty) {
  ScriptedView view(testing::example_placement());
  view.set_now(50.0);
  view.at(0).state = disk::DiskState::Idle;
  view.at(0).state_since = 0.0;
  view.at(0).last_request_time = 40.0;
  view.at(1).state = disk::DiskState::Idle;
  view.at(1).state_since = 0.0;
  view.at(1).last_request_time = 20.0;
  disk::Request r;
  r.id = 1;
  r.data = 1;
  core::PredictiveParams params;
  params.cost = core::CostParams{1.0, 100.0};
  params.gamma = 0.0;  // isolate the backpressure term
  core::PredictiveCostScheduler sched(params);
  EXPECT_EQ(sched.pick(r, view), 0u);
  view.set_backpressured(0, true);
  EXPECT_EQ(sched.pick(r, view), 1u);
}

// -------------------------------------------- sweeps: emission + threads

runner::ExperimentParams reliability_sweep_params() {
  reliability::ReliabilityConfig rel;
  rel.deadline_seconds = 0.25;
  rel.max_attempts = 3;
  rel.hedge_delay_seconds = 0.05;
  rel.max_queue_depth = 64;
  fault::FaultProfile fp;
  fault::ScriptedFault f;
  f.kind = fault::ScriptedFault::Kind::kTransient;
  f.disk = 0;
  f.time = 5.0;
  f.duration = 10.0;
  fp.script.push_back(f);
  return runner::ExperimentBuilder(runner::Workload::kCello)
      .requests(1500)
      .reliability(rel)
      .fault(fp)
      .build();
}

TEST(ReliabilitySweep, ColumnsAppearOnlyWhenSomeCellEnablesTheTier) {
  const auto base = runner::ExperimentBuilder(runner::Workload::kCello)
                        .requests(800)
                        .build();
  const auto grid = runner::product_grid(
      base, {"static"}, {"off", "on"},
      [](const runner::ExperimentParams& b, const std::string& tag) {
        if (tag == "off") return b;
        reliability::ReliabilityConfig rel;
        rel.deadline_seconds = 0.25;
        return runner::ExperimentBuilder(b).reliability(rel).build();
      });
  runner::SweepOptions opts;
  opts.threads = 1;
  const auto results = runner::SweepRunner(opts).run(grid);
  std::ostringstream mixed;
  runner::emit_cells(mixed, results, runner::EmitFormat::kCsv);
  EXPECT_NE(mixed.str().find("deadline_miss"), std::string::npos);
  EXPECT_NE(mixed.str().find("hedge_wins"), std::string::npos);
  // A tier-free sweep keeps the historical schema byte for byte.
  std::vector<runner::CellResult> off_only = {results[0]};
  off_only[0].index = 0;
  std::ostringstream off;
  runner::emit_cells(off, off_only, runner::EmitFormat::kCsv);
  EXPECT_EQ(off.str().find("deadline_miss"), std::string::npos);
}

TEST(ReliabilitySweep, BitIdenticalAcrossThreadCounts) {
  const auto params = reliability_sweep_params();
  const auto grid = [&] {
    return runner::product_grid(
        params, {"static", "heuristic"}, {"x"},
        [](const runner::ExperimentParams& b, const std::string&) {
          return b;
        });
  };
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    runner::SweepOptions opts;
    opts.threads = threads;
    auto results = runner::SweepRunner(opts).run(grid());
    for (auto& c : results) {  // run metadata is not part of the identity
      c.wall_seconds = 0.0;
      c.peak_rss_kib = 0;
    }
    std::ostringstream os;
    runner::emit_cells(os, results, runner::EmitFormat::kJson);
    if (reference.empty()) {
      reference = os.str();
      EXPECT_NE(reference.find("\"reliability\""), std::string::npos);
    } else {
      EXPECT_EQ(os.str(), reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace eas
