// Tests for Eq. 3 / Eq. 5 / Eq. 6 — the paper's energy accounting.
#include <gtest/gtest.h>

#include <limits>

#include "core/energy_model.hpp"
#include "util/check.hpp"

namespace eas::core {
namespace {

disk::DiskPowerParams power() {
  disk::DiskPowerParams p;
  p.idle_watts = 10.0;
  p.active_watts = 12.0;
  p.standby_watts = 1.0;
  p.spinup_watts = 20.0;
  p.spindown_watts = 10.0;
  p.spinup_seconds = 6.0;
  p.spindown_seconds = 4.0;
  return p;  // E = 160 J, T_B = 16 s, window = 26 s, ceiling = 320 J
}

// ------------------------------------------------------------------ Eq. 3

TEST(PairwiseSaving, CaseIIICloseSuccessorSavesAlmostEverything) {
  // dt < T_B: X = E + (T_B - dt) * P_I.
  EXPECT_DOUBLE_EQ(pairwise_energy_saving(100.0, 102.0, power()),
                   160.0 + 14.0 * 10.0);
}

TEST(PairwiseSaving, SimultaneousSuccessorSavesTheCeiling) {
  EXPECT_DOUBLE_EQ(pairwise_energy_saving(5.0, 5.0, power()), 320.0);
}

TEST(PairwiseSaving, CaseIIInsideWindowBeyondBreakeven) {
  // T_B < dt < T_B + T_up + T_down: still positive, linearly shrinking.
  const double x = pairwise_energy_saving(0.0, 20.0, power());
  EXPECT_DOUBLE_EQ(x, 160.0 + (16.0 - 20.0) * 10.0);  // 120
  EXPECT_GT(x, 0.0);
}

TEST(PairwiseSaving, CaseIOutsideWindowSavesNothing) {
  EXPECT_DOUBLE_EQ(pairwise_energy_saving(0.0, 26.0, power()), 0.0);
  EXPECT_DOUBLE_EQ(pairwise_energy_saving(0.0, 1000.0, power()), 0.0);
}

TEST(PairwiseSaving, ContinuousAtTheWindowBoundary) {
  const double eps = 1e-9;
  const double just_inside = pairwise_energy_saving(0.0, 26.0 - eps, power());
  EXPECT_NEAR(just_inside, 160.0 - 10.0 * 10.0, 1e-5);  // 60 J at boundary
}

TEST(PairwiseSaving, MonotoneNonIncreasingInGap) {
  double prev = pairwise_energy_saving(0.0, 0.0, power());
  for (double dt = 0.5; dt < 30.0; dt += 0.5) {
    const double x = pairwise_energy_saving(0.0, dt, power());
    EXPECT_LE(x, prev + 1e-12);
    prev = x;
  }
}

TEST(PairwiseSaving, RejectsNegativeGap) {
  EXPECT_THROW(pairwise_energy_saving(5.0, 4.0, power()), InvariantError);
}

TEST(PairwiseSaving, InfiniteSuccessorMeansNoSaving) {
  EXPECT_DOUBLE_EQ(pairwise_energy_saving(
                       0.0, std::numeric_limits<double>::infinity(), power()),
                   0.0);
}

TEST(PairwiseConsumption, ComplementsSavingToTheCeiling) {
  for (double dt : {0.0, 3.0, 16.0, 20.0, 26.0, 100.0}) {
    EXPECT_DOUBLE_EQ(pairwise_energy_saving(0.0, dt, power()) +
                         pairwise_energy_consumption(0.0, dt, power()),
                     power().max_request_energy());
  }
}

TEST(PairwiseConsumption, InWindowConsumptionIsIdleEnergy) {
  // Lemma 1 cases II/III: consumption = (tj - ti) * P_I.
  EXPECT_DOUBLE_EQ(pairwise_energy_consumption(0.0, 2.0, power()), 20.0);
  EXPECT_DOUBLE_EQ(pairwise_energy_consumption(0.0, 20.0, power()), 200.0);
}

// ------------------------------------------------------------------ Eq. 5

TEST(MarginalCost, ActiveAndSpinningUpAreFree) {
  DiskSnapshot s;
  s.state = disk::DiskState::Active;
  EXPECT_DOUBLE_EQ(marginal_energy_cost(s, 100.0, power()), 0.0);
  s.state = disk::DiskState::SpinningUp;
  EXPECT_DOUBLE_EQ(marginal_energy_cost(s, 100.0, power()), 0.0);
}

TEST(MarginalCost, StandbyCostsAFullWakeCycle) {
  DiskSnapshot s;
  s.state = disk::DiskState::Standby;
  EXPECT_DOUBLE_EQ(marginal_energy_cost(s, 100.0, power()),
                   160.0 + 16.0 * 10.0);
  s.state = disk::DiskState::SpinningDown;
  EXPECT_DOUBLE_EQ(marginal_energy_cost(s, 100.0, power()), 320.0);
}

TEST(MarginalCost, IdleCostsTheWindowExtension) {
  DiskSnapshot s;
  s.state = disk::DiskState::Idle;
  s.last_request_time = 90.0;
  EXPECT_DOUBLE_EQ(marginal_energy_cost(s, 100.0, power()), 100.0);
}

TEST(MarginalCost, FreshIdleDiskUsesIdleStartAsReference) {
  DiskSnapshot s;
  s.state = disk::DiskState::Idle;
  s.last_request_time = -1.0;  // never served
  s.state_since = 95.0;
  EXPECT_DOUBLE_EQ(marginal_energy_cost(s, 100.0, power()), 50.0);
}

TEST(MarginalCost, JustServedIdleDiskIsNearlyFree) {
  DiskSnapshot s;
  s.state = disk::DiskState::Idle;
  s.last_request_time = 100.0;
  EXPECT_DOUBLE_EQ(marginal_energy_cost(s, 100.0, power()), 0.0);
}

TEST(MarginalCost, SchedulerPreference) {
  // §3.3's observation: spinning-up beats idle beats standby for a loaded
  // choice; an idle disk with a long-open window approaches standby cost.
  DiskSnapshot spinning_up{disk::DiskState::SpinningUp, 0.0, -1.0, 0};
  DiskSnapshot idle{disk::DiskState::Idle, 0.0, 95.0, 0};
  DiskSnapshot standby{disk::DiskState::Standby, 0.0, -1.0, 0};
  const double now = 100.0;
  EXPECT_LT(marginal_energy_cost(spinning_up, now, power()),
            marginal_energy_cost(idle, now, power()));
  EXPECT_LT(marginal_energy_cost(idle, now, power()),
            marginal_energy_cost(standby, now, power()));
}

// ------------------------------------------------------------------ Eq. 6

TEST(CompositeCost, AlphaOneIsPureEnergy) {
  DiskSnapshot s{disk::DiskState::Standby, 0.0, -1.0, 7};
  const double c = composite_cost(s, 0.0, power(), CostParams{1.0, 100.0});
  EXPECT_DOUBLE_EQ(c, 320.0 / 100.0);
}

TEST(CompositeCost, AlphaZeroIsPureQueueLength) {
  DiskSnapshot s{disk::DiskState::Standby, 0.0, -1.0, 7};
  const double c = composite_cost(s, 0.0, power(), CostParams{0.0, 100.0});
  EXPECT_DOUBLE_EQ(c, 7.0);
}

TEST(CompositeCost, BetaScalesOnlyTheEnergyTerm) {
  DiskSnapshot s{disk::DiskState::Standby, 0.0, -1.0, 2};
  const CostParams a{0.5, 10.0}, b{0.5, 1000.0};
  const double ca = composite_cost(s, 0.0, power(), a);
  const double cb = composite_cost(s, 0.0, power(), b);
  EXPECT_DOUBLE_EQ(ca - cb, 0.5 * 320.0 * (1.0 / 10.0 - 1.0 / 1000.0));
}

TEST(CompositeCost, RejectsBadParams) {
  DiskSnapshot s;
  EXPECT_THROW(composite_cost(s, 0.0, power(), CostParams{-0.1, 100.0}),
               InvariantError);
  EXPECT_THROW(composite_cost(s, 0.0, power(), CostParams{1.1, 100.0}),
               InvariantError);
  EXPECT_THROW(composite_cost(s, 0.0, power(), CostParams{0.5, 0.0}),
               InvariantError);
}

}  // namespace
}  // namespace eas::core
