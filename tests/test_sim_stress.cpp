// Randomized stress/property tests for the event kernel: heavy interleaving
// of scheduling, cancellation and re-entrant event creation must preserve
// the two kernel invariants — monotone fire times and FIFO tie-breaking.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace eas::sim {
namespace {

class SimStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimStressTest, FireTimesAreMonotoneUnderRandomChurn) {
  util::Rng rng(GetParam());
  Simulator sim;
  std::vector<double> fired_at;
  std::vector<EventHandle> handles;

  // Seed events.
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    handles.push_back(sim.schedule_at(t, [&fired_at, &sim] {
      fired_at.push_back(sim.now());
    }));
  }
  // Random cancellations.
  for (int i = 0; i < 60; ++i) {
    sim.cancel(handles[rng.next_below(handles.size())]);
  }
  // Re-entrant churn: some events spawn children and cancel peers.
  for (int i = 0; i < 50; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    sim.schedule_at(t, [&, i] {
      fired_at.push_back(sim.now());
      if (i % 3 == 0) {
        sim.schedule_in(rng.uniform(0.0, 10.0),
                        [&fired_at, &sim] { fired_at.push_back(sim.now()); });
      }
      if (i % 4 == 0 && !handles.empty()) {
        sim.cancel(handles[i % handles.size()]);
      }
    });
  }

  sim.run();
  for (std::size_t i = 1; i < fired_at.size(); ++i) {
    ASSERT_LE(fired_at[i - 1], fired_at[i]) << "at event " << i;
  }
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_P(SimStressTest, CancelledEventsNeverFireAndLiveOnesAlwaysDo) {
  util::Rng rng(GetParam() + 1000);
  Simulator sim;
  const int n = 300;
  std::vector<int> fired(n, 0);
  std::vector<EventHandle> handles;
  for (int i = 0; i < n; ++i) {
    handles.push_back(
        sim.schedule_at(rng.uniform(0.0, 50.0), [&fired, i] { ++fired[i]; }));
  }
  std::vector<bool> cancelled(n, false);
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.4)) cancelled[i] = sim.cancel(handles[i]);
  }
  sim.run();
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(fired[i], cancelled[i] ? 0 : 1) << "event " << i;
  }
}

TEST_P(SimStressTest, FifoWithinIdenticalTimestamps) {
  util::Rng rng(GetParam() + 2000);
  Simulator sim;
  // A handful of distinct timestamps, many events each.
  const double times[] = {1.0, 2.0, 2.0, 3.5};
  std::vector<std::pair<double, int>> order;
  int seq = 0;
  for (int round = 0; round < 100; ++round) {
    const double t = times[rng.next_below(4)];
    const int my_seq = seq++;
    sim.schedule_at(t, [&order, t, my_seq] { order.push_back({t, my_seq}); });
  }
  sim.run();
  // Within each timestamp, sequence numbers must be increasing.
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i - 1].first == order[i].first) {
      EXPECT_LT(order[i - 1].second, order[i].second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimStressTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(SimStress, DeepReentrantChainTerminates) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10000) sim.schedule_in(0.0, chain);
  };
  sim.schedule_at(0.0, chain);
  EXPECT_EQ(sim.run(), 10000u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);  // zero-delay chain stays at t=0
}

}  // namespace
}  // namespace eas::sim
