// Randomized stress/property tests for the event kernel: heavy interleaving
// of scheduling, cancellation and re-entrant event creation must preserve
// the two kernel invariants — monotone fire times and FIFO tie-breaking.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace eas::sim {
namespace {

class SimStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimStressTest, FireTimesAreMonotoneUnderRandomChurn) {
  util::Rng rng(GetParam());
  Simulator sim;
  std::vector<double> fired_at;
  std::vector<EventHandle> handles;

  // Seed events.
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    handles.push_back(sim.schedule_at(t, [&fired_at, &sim] {
      fired_at.push_back(sim.now());
    }));
  }
  // Random cancellations.
  for (int i = 0; i < 60; ++i) {
    sim.cancel(handles[rng.next_below(handles.size())]);
  }
  // Re-entrant churn: some events spawn children and cancel peers.
  for (int i = 0; i < 50; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    sim.schedule_at(t, [&, i] {
      fired_at.push_back(sim.now());
      if (i % 3 == 0) {
        sim.schedule_in(rng.uniform(0.0, 10.0),
                        [&fired_at, &sim] { fired_at.push_back(sim.now()); });
      }
      if (i % 4 == 0 && !handles.empty()) {
        sim.cancel(handles[i % handles.size()]);
      }
    });
  }

  sim.run();
  for (std::size_t i = 1; i < fired_at.size(); ++i) {
    ASSERT_LE(fired_at[i - 1], fired_at[i]) << "at event " << i;
  }
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_P(SimStressTest, CancelledEventsNeverFireAndLiveOnesAlwaysDo) {
  util::Rng rng(GetParam() + 1000);
  Simulator sim;
  const int n = 300;
  std::vector<int> fired(n, 0);
  std::vector<EventHandle> handles;
  for (int i = 0; i < n; ++i) {
    handles.push_back(
        sim.schedule_at(rng.uniform(0.0, 50.0), [&fired, i] { ++fired[i]; }));
  }
  std::vector<bool> cancelled(n, false);
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.4)) cancelled[i] = sim.cancel(handles[i]);
  }
  sim.run();
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(fired[i], cancelled[i] ? 0 : 1) << "event " << i;
  }
}

TEST_P(SimStressTest, FifoWithinIdenticalTimestamps) {
  util::Rng rng(GetParam() + 2000);
  Simulator sim;
  // A handful of distinct timestamps, many events each.
  const double times[] = {1.0, 2.0, 2.0, 3.5};
  std::vector<std::pair<double, int>> order;
  int seq = 0;
  for (int round = 0; round < 100; ++round) {
    const double t = times[rng.next_below(4)];
    const int my_seq = seq++;
    sim.schedule_at(t, [&order, t, my_seq] { order.push_back({t, my_seq}); });
  }
  sim.run();
  // Within each timestamp, sequence numbers must be increasing.
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i - 1].first == order[i].first) {
      EXPECT_LT(order[i - 1].second, order[i].second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimStressTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// 100k-operation churn through the slot pool: schedule, cancel, and fire in
// random proportions while asserting after every phase that the indexed heap
// and the slot bookkeeping agree (queue_depth() counts heap entries,
// pending_count() counts live slots — a leaked tombstone or a double-freed
// slot breaks the equality).
TEST(SimStress, HeapAndSlotPoolStayInSyncOver100kOps) {
  util::Rng rng(0xea50123);
  Simulator sim;
  std::vector<EventHandle> live;
  std::size_t expected_pending = 0;
  std::size_t fired = 0;

  for (int op = 0; op < 100000; ++op) {
    const double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.55 || live.empty()) {
      live.push_back(
          sim.schedule_in(rng.uniform(0.0, 10.0), [&fired] { ++fired; }));
      ++expected_pending;
    } else if (dice < 0.85) {
      // Cancel a random handle; it may already have been cancelled or fired,
      // in which case cancel() must report false and change nothing.
      const std::size_t pick = rng.next_below(live.size());
      if (sim.cancel(live[pick])) --expected_pending;
      live[pick] = live.back();
      live.pop_back();
    } else {
      const std::size_t before = sim.pending_count();
      if (sim.step()) --expected_pending;
      ASSERT_EQ(sim.pending_count(), before == 0 ? 0 : before - 1);
    }
    ASSERT_EQ(sim.queue_depth(), sim.pending_count()) << "op " << op;
    ASSERT_EQ(sim.pending_count(), expected_pending) << "op " << op;
  }
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.queue_depth(), 0u);
}

// Slot recycling mints a fresh generation, so a handle kept across a
// cancel/fire + re-schedule must be rejected instead of killing the new
// occupant of the slot.
TEST(SimStress, RecycledSlotRejectsStaleHandles) {
  Simulator sim;
  int first = 0, second = 0;

  // Recycle via cancel: h1's slot is freed, h2 reuses it.
  const EventHandle h1 = sim.schedule_at(1.0, [&first] { ++first; });
  ASSERT_TRUE(sim.cancel(h1));
  const EventHandle h2 = sim.schedule_at(2.0, [&second] { ++second; });
  EXPECT_FALSE(sim.cancel(h1)) << "stale handle cancelled the recycled slot";
  EXPECT_EQ(sim.pending_count(), 1u);

  // Recycle via fire: after h2 fires, h3 reuses the slot; both old handles
  // must still be dead.
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(second, 1);
  const EventHandle h3 = sim.schedule_at(3.0, [&first] { ++first; });
  EXPECT_FALSE(sim.cancel(h1));
  EXPECT_FALSE(sim.cancel(h2));
  EXPECT_TRUE(sim.cancel(h3));
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(first, 0);

  // A default handle is never valid.
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(SimStress, DeepReentrantChainTerminates) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10000) sim.schedule_in(0.0, chain);
  };
  sim.schedule_at(0.0, chain);
  EXPECT_EQ(sim.run(), 10000u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);  // zero-delay chain stays at t=0
}

}  // namespace
}  // namespace eas::sim
