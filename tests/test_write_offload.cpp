// Tests for the write off-loading extension (§2.1's assumed substrate).
#include <gtest/gtest.h>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/write_offload.hpp"
#include "paper_example.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"

namespace eas::core {
namespace {

/// Scriptable SystemView (same pattern as test_schedulers.cpp).
class FakeView final : public SystemView {
 public:
  explicit FakeView(placement::PlacementMap placement)
      : placement_(std::move(placement)),
        snapshots_(placement_.num_disks()) {}

  double now() const override { return now_; }
  const placement::PlacementMap& placement() const override {
    return placement_;
  }
  DiskSnapshot snapshot(DiskId k) const override { return snapshots_.at(k); }
  const disk::DiskPowerParams& power_params() const override { return power_; }

  void set_all(disk::DiskState st) {
    for (auto& s : snapshots_) s.state = st;
  }
  DiskSnapshot& at(DiskId k) { return snapshots_.at(k); }

 private:
  placement::PlacementMap placement_;
  std::vector<DiskSnapshot> snapshots_;
  disk::DiskPowerParams power_ = testing::example_power();
  double now_ = 0.0;
};

disk::Request write_to(DataId data) {
  disk::Request r;
  r.id = 1;
  r.data = data;
  return r;
}

TEST(WriteOffload, SpinningHomeAbsorbsTheWrite) {
  FakeView view(testing::example_placement());
  view.set_all(disk::DiskState::Standby);
  view.at(0).state = disk::DiskState::Idle;  // home of b1
  WriteOffloadManager mgr;
  EXPECT_EQ(mgr.route_write(write_to(0), view), 0u);
  EXPECT_EQ(mgr.stats().writes_home, 1u);
  EXPECT_EQ(mgr.diverted_blocks(), 0u);
}

TEST(WriteOffload, SleepingHomeDivertsToSpinningReplica) {
  FakeView view(testing::example_placement());
  view.set_all(disk::DiskState::Standby);
  view.at(1).state = disk::DiskState::Idle;  // d2 holds b3's replica
  WriteOffloadManager mgr;
  // b3 (data 2) lives on {0, 1, 3}; home 0 sleeps, replica 1 spins.
  EXPECT_EQ(mgr.route_write(write_to(2), view), 1u);
  EXPECT_EQ(mgr.stats().writes_diverted, 1u);
  EXPECT_EQ(mgr.diverted_blocks(), 1u);
}

TEST(WriteOffload, FallsBackToAnySpinningDisk) {
  FakeView view(testing::example_placement());
  view.set_all(disk::DiskState::Standby);
  view.at(2).state = disk::DiskState::Active;  // d3 does NOT hold b1
  WriteOffloadManager mgr;
  EXPECT_EQ(mgr.route_write(write_to(0), view), 2u);  // foreign diversion
  EXPECT_EQ(mgr.stats().writes_diverted, 1u);
  EXPECT_EQ(mgr.diverted_blocks(), 1u);
}

TEST(WriteOffload, ColdSystemWakesTheHomeDisk) {
  FakeView view(testing::example_placement());
  view.set_all(disk::DiskState::Standby);
  WriteOffloadManager mgr;
  EXPECT_EQ(mgr.route_write(write_to(0), view), 0u);
  EXPECT_EQ(mgr.stats().writes_woke_home, 1u);
  EXPECT_EQ(mgr.diverted_blocks(), 0u);
}

TEST(WriteOffload, DisabledManagerAlwaysGoesHome) {
  FakeView view(testing::example_placement());
  view.set_all(disk::DiskState::Standby);
  view.at(2).state = disk::DiskState::Idle;
  WriteOffloadOptions opts;
  opts.enabled = false;
  WriteOffloadManager mgr(opts);
  EXPECT_EQ(mgr.route_write(write_to(0), view), 0u);
  EXPECT_EQ(mgr.stats().writes_woke_home, 1u);
}

TEST(WriteOffload, ReadsFollowTheDiversionWhileHomeSleeps) {
  FakeView view(testing::example_placement());
  view.set_all(disk::DiskState::Standby);
  view.at(2).state = disk::DiskState::Active;
  WriteOffloadManager mgr;
  mgr.route_write(write_to(0), view);  // b1 diverted to d3

  const auto target = mgr.read_override(0, view);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, 2u);
  EXPECT_EQ(mgr.stats().reads_redirected, 1u);
}

TEST(WriteOffload, LazyReclaimWhenHomeSpinsUp) {
  FakeView view(testing::example_placement());
  view.set_all(disk::DiskState::Standby);
  view.at(2).state = disk::DiskState::Active;
  WriteOffloadManager mgr;
  mgr.route_write(write_to(0), view);
  ASSERT_EQ(mgr.diverted_blocks(), 1u);

  view.at(0).state = disk::DiskState::Idle;  // home woke up for other work
  EXPECT_FALSE(mgr.read_override(0, view).has_value());
  EXPECT_EQ(mgr.stats().reclaims, 1u);
  EXPECT_EQ(mgr.diverted_blocks(), 0u);
}

TEST(WriteOffload, RewriteToSpinningHomeRetiresTheDiversion) {
  FakeView view(testing::example_placement());
  view.set_all(disk::DiskState::Standby);
  view.at(2).state = disk::DiskState::Active;
  WriteOffloadManager mgr;
  mgr.route_write(write_to(0), view);
  ASSERT_EQ(mgr.diverted_blocks(), 1u);

  view.at(0).state = disk::DiskState::Idle;
  EXPECT_EQ(mgr.route_write(write_to(0), view), 0u);
  EXPECT_EQ(mgr.diverted_blocks(), 0u);
  EXPECT_EQ(mgr.stats().reclaims, 1u);
}

TEST(WriteOffload, ReadOverrideIsNulloptForUndivertedData) {
  FakeView view(testing::example_placement());
  WriteOffloadManager mgr;
  EXPECT_FALSE(mgr.read_override(3, view).has_value());
}

// ------------------------------------------------------- full-system runs

TEST(RunOnlineMixed, ServesMixedTracesCompletely) {
  trace::SyntheticTraceConfig tc;
  tc.num_requests = 3000;
  tc.num_data = 256;
  tc.mean_rate = 10.0;
  tc.write_fraction = 0.3;
  const auto trace = trace::make_synthetic_trace(tc);
  ASSERT_GT(trace.size() - trace.reads_only().size(), 0u);  // has writes

  placement::ZipfPlacementConfig pc;
  pc.num_disks = 12;
  pc.num_data = 256;
  pc.replication_factor = 2;
  const auto placement = placement::make_zipf_placement(pc);

  storage::SystemConfig cfg;
  CostFunctionScheduler sched;
  power::FixedThresholdPolicy policy;
  WriteOffloadManager offloader;
  const auto result = storage::run_online_mixed(cfg, placement, trace, sched,
                                                policy, offloader);
  EXPECT_EQ(result.total_requests, trace.size());
  EXPECT_EQ(offloader.stats().writes_total,
            trace.size() - trace.reads_only().size());
}

TEST(RunOnlineMixed, OffloadingSavesEnergyOnWriteHeavyWorkloads) {
  trace::SyntheticTraceConfig tc;
  tc.num_requests = 5000;
  tc.num_data = 512;
  tc.mean_rate = 6.0;  // sparse: plenty of sleeping homes to protect
  tc.write_fraction = 0.5;
  const auto trace = trace::make_synthetic_trace(tc);

  placement::ZipfPlacementConfig pc;
  pc.num_disks = 24;
  pc.num_data = 512;
  pc.replication_factor = 2;
  const auto placement = placement::make_zipf_placement(pc);
  storage::SystemConfig cfg;

  auto run = [&](bool enabled) {
    CostFunctionScheduler sched;
    power::FixedThresholdPolicy policy;
    WriteOffloadOptions opts;
    opts.enabled = enabled;
    WriteOffloadManager offloader(opts);
    return storage::run_online_mixed(cfg, placement, trace, sched, policy,
                                     offloader);
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_LT(on.total_energy(), off.total_energy());
  EXPECT_LT(on.total_spin_ups(), off.total_spin_ups());
}

}  // namespace
}  // namespace eas::core
