// Observability layer: the trace recorder's ring/category/export semantics,
// the metric registry's deterministic merge, and the acceptance check that a
// recorded trace of the paper's example workload replays each disk's
// power-state timeline exactly as the energy accounting saw it.
//
// These tests carry the obs-smoke ctest label.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/basic_schedulers.hpp"
#include "disk/disk.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace_recorder.hpp"
#include "paper_example.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "util/check.hpp"

namespace eas {
namespace {

// --- vocabulary -------------------------------------------------------------

// obs sits *below* disk in the layering, so it carries its own copy of the
// power-state name table; this pin is what keeps the two from drifting.
TEST(ObsVocabulary, PowerStateNamesMatchDiskToString) {
  for (int s = 0; s < disk::kNumDiskStates; ++s) {
    EXPECT_STREQ(obs::power_state_name(static_cast<std::uint32_t>(s)),
                 disk::to_string(static_cast<disk::DiskState>(s)))
        << "state " << s;
  }
  EXPECT_STREQ(obs::power_state_name(99), "?");
}

TEST(ObsVocabulary, EveryEventHasANameAndACategory) {
  for (int e = 0; e <= static_cast<int>(obs::Ev::kDestageDone); ++e) {
    const auto ev = static_cast<obs::Ev>(e);
    EXPECT_STRNE(to_string(ev), "?") << "event " << e;
    const obs::Cat cat = obs::category_of(ev);
    EXPECT_STRNE(to_string(cat), "?") << "event " << e;
    EXPECT_NE(obs::cat_bit(cat) & obs::kAllCategories, 0u);
  }
}

TEST(ObsVocabulary, ConfigValidation) {
  obs::TraceConfig off;  // disabled configs are never checked
  off.capacity = 0;
  EXPECT_NO_THROW(off.validate());

  obs::TraceConfig on;
  on.enabled = true;
  EXPECT_NO_THROW(on.validate());
  on.capacity = 0;
  EXPECT_THROW(on.validate(), InvariantError);
  on.capacity = 16;
  on.categories = 0;
  EXPECT_THROW(on.validate(), InvariantError);
  on.categories = obs::kAllCategories + 1;
  EXPECT_THROW(on.validate(), InvariantError);

  obs::ObsConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_NO_THROW(cfg.validate());
  cfg.metrics = true;
  EXPECT_TRUE(cfg.enabled());
  cfg.trace.enabled = true;
  cfg.trace.capacity = 0;
  EXPECT_THROW(cfg.validate(), InvariantError);
}

// --- ring buffer ------------------------------------------------------------

TEST(TraceRing, KeepsNewestEventsAndCountsDrops) {
  obs::TraceRecorder rec({.enabled = true, .capacity = 4});
  for (int i = 0; i < 6; ++i) {
    rec.record(static_cast<double>(i), obs::Ev::kArrive,
               static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  // Surviving events are the newest four, in chronological order.
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.event(i).id, i + 2);
    EXPECT_EQ(rec.event(i).time, static_cast<double>(i + 2));
  }
}

TEST(TraceRing, CategoryMaskDropsUnwantedEventsForFree) {
  obs::TraceRecorder rec(
      {.enabled = true, .categories = obs::cat_bit(obs::Cat::kPower),
       .capacity = 16});
  rec.request_event(0.0, obs::Ev::kArrive, 1, 0);
  rec.power_transition(1.0, 0, 0, 1);
  rec.batch_formed(2.0, 0, 5);
  // Masked events are not recorded *and* not counted as drops.
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.event(0).ev, obs::Ev::kPowerTransition);
  EXPECT_TRUE(rec.wants(obs::Cat::kPower));
  EXPECT_FALSE(rec.wants(obs::Cat::kRequest));
}

TEST(TraceRing, EasObsMacroIsNullSafe) {
  obs::TraceRecorder* none = nullptr;
  EAS_OBS(none, record(0.0, obs::Ev::kArrive, 1));  // must not crash

  obs::TraceRecorder rec({.enabled = true, .capacity = 8});
  obs::TraceRecorder* some = &rec;
  EAS_OBS(some, record(1.0, obs::Ev::kArrive, 7));
#if defined(EASCHED_NO_OBS)
  EXPECT_EQ(rec.recorded(), 0u);
#else
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_EQ(rec.event(0).id, 7u);
#endif
}

TEST(TraceRing, EventIsThirtyTwoBytes) {
  EXPECT_EQ(sizeof(obs::TraceEvent), 32u);
}

// --- binary image -----------------------------------------------------------

TEST(TraceBinary, RoundTripsThroughAStream) {
  obs::TraceRecorder rec({.enabled = true, .capacity = 4});
  for (int i = 0; i < 6; ++i) {  // wraps: events 2..5 survive
    rec.record(0.25 * i, obs::Ev::kQueue, static_cast<std::uint64_t>(i),
               100 + i, 7, 3);
  }
  std::stringstream ss;
  rec.write_binary(ss);
  const auto events = obs::TraceRecorder::read_binary(ss);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(std::memcmp(&events[i], &rec.event(i), sizeof(obs::TraceEvent)),
              0)
        << "event " << i;
  }
}

TEST(TraceBinary, EmptyRecorderRoundTrips) {
  obs::TraceRecorder rec({.enabled = true, .capacity = 4});
  std::stringstream ss;
  rec.write_binary(ss);
  EXPECT_TRUE(obs::TraceRecorder::read_binary(ss).empty());
}

TEST(TraceBinary, RejectsForeignAndTruncatedStreams) {
  {
    std::stringstream ss;
    ss << "this is not a trace, it is a sentence about traces.....";
    EXPECT_THROW(obs::TraceRecorder::read_binary(ss), InvariantError);
  }
  {
    obs::TraceRecorder rec({.enabled = true, .capacity = 4});
    rec.record(1.0, obs::Ev::kArrive, 1);
    std::stringstream ss;
    rec.write_binary(ss);
    std::string bytes = ss.str();
    bytes.resize(bytes.size() - 8);  // chop the tail of the only event
    std::stringstream cut(bytes);
    EXPECT_THROW(obs::TraceRecorder::read_binary(cut), InvariantError);
  }
}

// --- Chrome export ----------------------------------------------------------

// Golden for a tiny hand-driven timeline. Pinning the exact bytes keeps the
// export schema-stable: Perfetto tolerates a lot, but diffs against recorded
// traces should only ever show intentional changes.
TEST(TraceChrome, GoldenTinyTimeline) {
  obs::TraceRecorder rec({.enabled = true, .capacity = 16});
  rec.power_transition(0.5, /*disk=*/0, /*from=*/0, /*to=*/1);  // standby→up
  rec.power_transition(1.5, 0, 1, 2);                           // up→idle
  std::ostringstream os;
  rec.export_chrome_json(os, /*horizon=*/2.0);
  EXPECT_EQ(
      os.str(),
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"easched run\"}},"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"system\"}},"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"disk 0\"}},"
      // Timestamps are microseconds through util::json_number's shortest
      // round-trip form, hence the scientific spellings.
      "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":0,\"dur\":5e+05,"
      "\"cat\":\"power\",\"name\":\"standby\"},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":5e+05,\"dur\":1e+06,"
      "\"cat\":\"power\",\"name\":\"spin-up\"},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1500000,\"dur\":5e+05,"
      "\"cat\":\"power\",\"name\":\"idle\"}"
      "]}\n");
}

TEST(TraceChrome, ServiceSpansAndInstantsLandOnTheDiskTrack) {
  obs::TraceRecorder rec({.enabled = true, .capacity = 16});
  rec.request_event(0.0, obs::Ev::kArrive, 1, 42);
  rec.request_event(0.0, obs::Ev::kQueue, 1, 3, 1);
  rec.request_event(0.1, obs::Ev::kServiceBegin, 1, 3);
  rec.request_event(0.2, obs::Ev::kServiceEnd, 1, 3);
  std::ostringstream os;
  rec.export_chrome_json(os, 0.2);
  const std::string json = os.str();
  // Arrive is a system-track instant; the rest ride on disk 3's track (tid 4).
  EXPECT_NE(json.find("{\"ph\":\"i\",\"pid\":0,\"tid\":0,"), std::string::npos);
  EXPECT_NE(json.find("{\"ph\":\"B\",\"pid\":0,\"tid\":4,"), std::string::npos);
  EXPECT_NE(json.find("{\"ph\":\"E\",\"pid\":0,\"tid\":4,"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"req 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"disk 3\""), std::string::npos);
}

// --- metric registry --------------------------------------------------------

TEST(Metrics, RegistrationHandsBackStablePointers) {
  obs::MetricRegistry reg;
  std::uint64_t* c = reg.counter("served");
  double* g = reg.gauge("energy");
  stats::SummaryStats* s = reg.summary("depth");
  stats::Histogram* h = reg.histogram("resp", 1e-3, 10.0);
  // Registering more entries must not invalidate earlier pointers.
  for (int i = 0; i < 64; ++i) {
    reg.counter("extra_" + std::to_string(i));
  }
  *c = 7;
  *g = 1.25;
  s->add(3.0);
  h->add(0.5);
  EXPECT_EQ(reg.find("served")->counter, 7u);
  EXPECT_EQ(reg.find("energy")->gauge, 1.25);
  EXPECT_EQ(reg.find("depth")->summary.count(), 1u);
  EXPECT_EQ(reg.find("resp")->histogram.total_count(), 1u);
  EXPECT_EQ(reg.find("missing"), nullptr);
  // Re-registration is find-or-create...
  EXPECT_EQ(reg.counter("served"), c);
  // ...but a kind clash is a programming error.
  EXPECT_THROW(reg.gauge("served"), InvariantError);
}

TEST(Metrics, MergeFoldsShardsInCallOrder) {
  obs::MetricRegistry a;
  obs::MetricRegistry b;
  *a.counter("served") = 10;
  *b.counter("served") = 32;
  *a.gauge("energy") = 1.0;
  *b.gauge("energy") = 2.0;
  a.summary("depth")->add(1.0);
  b.summary("depth")->add(3.0);
  a.histogram("resp", 1e-3, 10.0)->add(0.1);
  b.histogram("resp", 1e-3, 10.0)->add(0.2);
  *b.counter("only_in_b") = 5;

  a.merge(b);
  EXPECT_EQ(a.find("served")->counter, 42u);
  EXPECT_EQ(a.find("energy")->gauge, 2.0);  // gauges: last shard wins
  EXPECT_EQ(a.find("depth")->summary.count(), 2u);
  EXPECT_EQ(a.find("depth")->summary.mean(), 2.0);
  EXPECT_EQ(a.find("resp")->histogram.total_count(), 2u);
  ASSERT_NE(a.find("only_in_b"), nullptr);  // appended, binning cloned
  EXPECT_EQ(a.find("only_in_b")->counter, 5u);
  // Mismatched histogram binning cannot be merged silently.
  obs::MetricRegistry c;
  c.histogram("resp", 1e-3, 10.0, 5);
  EXPECT_THROW(a.merge(c), InvariantError);
}

TEST(Metrics, ToJsonFollowsRegistrationOrder) {
  obs::MetricRegistry reg;
  *reg.counter("z_first") = 1;
  *reg.gauge("a_second") = 0.5;
  const std::string json = reg.to_json();
  EXPECT_EQ(json,
            "{\"z_first\":{\"kind\":\"counter\",\"value\":1},"
            "\"a_second\":{\"kind\":\"gauge\",\"value\":0.5}}");
}

// --- end-to-end: the paper example under full instrumentation ---------------

storage::SystemConfig traced_config() {
  storage::SystemConfig cfg;
  cfg.power.idle_watts = 10.0;
  cfg.power.active_watts = 12.0;
  cfg.power.standby_watts = 1.0;
  cfg.power.spinup_watts = 20.0;
  cfg.power.spindown_watts = 10.0;
  cfg.power.spinup_seconds = 6.0;
  cfg.power.spindown_seconds = 4.0;
  cfg.obs.trace.enabled = true;
  cfg.obs.trace.capacity = 1u << 12;
  cfg.obs.metrics = true;
  return cfg;
}

storage::RunResult traced_run(const storage::SystemConfig& cfg) {
  core::StaticScheduler sched;
  power::FixedThresholdPolicy policy(2.0);  // aggressive: forces spin cycling
  return storage::run_online(cfg, testing::example_placement(),
                             testing::example_offline_trace(), sched, policy);
}

// The acceptance criterion: replaying the recorded power-transition events
// against the run's horizon must reconstruct every disk's seconds-in-state
// exactly as DiskStats (the EnergyMeter's view) accounted them, and the
// spin-up / spin-down transition counts must match the disk counters.
TEST(PaperExampleTrace, PowerTimelineReplayMatchesEnergyAccounting) {
  const auto cfg = traced_config();
  const auto r = traced_run(cfg);
  ASSERT_NE(r.trace_recorder, nullptr);
  const obs::TraceRecorder& rec = *r.trace_recorder;
  ASSERT_EQ(rec.dropped(), 0u) << "ring too small for the example workload";

  const std::size_t disks = r.disk_stats.size();
  std::vector<std::array<double, disk::kNumDiskStates>> seconds(
      disks, std::array<double, disk::kNumDiskStates>{});
  std::vector<std::uint32_t> state(
      disks, static_cast<std::uint32_t>(cfg.initial_state));
  std::vector<double> since(disks, 0.0);
  std::vector<std::uint64_t> ups(disks, 0), downs(disks, 0);

  for (std::size_t i = 0; i < rec.size(); ++i) {
    const obs::TraceEvent& e = rec.event(i);
    if (e.ev != obs::Ev::kPowerTransition) continue;
    const auto d = static_cast<std::size_t>(e.id);
    ASSERT_LT(d, disks);
    // The transition's "from" field must chain with the replayed state.
    ASSERT_EQ(e.b, state[d]) << "broken transition chain on disk " << d;
    seconds[d][state[d]] += e.time - since[d];
    state[d] = e.c;
    since[d] = e.time;
    if (e.c == static_cast<std::uint16_t>(disk::DiskState::SpinningUp)) {
      ++ups[d];
    }
    if (e.c == static_cast<std::uint16_t>(disk::DiskState::SpinningDown)) {
      ++downs[d];
    }
  }
  for (std::size_t d = 0; d < disks; ++d) {
    seconds[d][state[d]] += r.horizon - since[d];
    for (int s = 0; s < disk::kNumDiskStates; ++s) {
      EXPECT_NEAR(seconds[d][s], r.disk_stats[d].seconds_in_state[s], 1e-9)
          << "disk " << d << " state " << disk::to_string(
                 static_cast<disk::DiskState>(s));
    }
    EXPECT_EQ(ups[d], r.disk_stats[d].spin_ups) << "disk " << d;
    EXPECT_EQ(downs[d], r.disk_stats[d].spin_downs) << "disk " << d;
  }

  // Every foreground request leaves a complete lifecycle in the trace.
  std::size_t completes = 0;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    if (rec.event(i).ev == obs::Ev::kComplete) ++completes;
  }
  EXPECT_EQ(completes, r.total_requests);
}

TEST(PaperExampleTrace, MetricsMatchRunResultAggregates) {
  const auto cfg = traced_config();
  const auto r = traced_run(cfg);
  ASSERT_NE(r.metrics, nullptr);
  const obs::MetricRegistry& m = *r.metrics;
  EXPECT_EQ(m.find("requests_completed")->counter, r.total_requests);
  EXPECT_EQ(m.find("requests_waited_spinup")->counter,
            r.requests_waited_spinup);
  EXPECT_EQ(m.find("spin_ups")->counter, r.total_spin_ups());
  EXPECT_EQ(m.find("spin_downs")->counter, r.total_spin_downs());
  EXPECT_EQ(m.find("total_energy_joules")->gauge, r.total_energy());
  EXPECT_EQ(m.find("response_seconds")->histogram.total_count(), r.total_requests);
  for (int s = 0; s < disk::kNumDiskStates; ++s) {
    const auto* entry = m.find(std::string("disk_seconds_") +
                               disk::to_string(static_cast<disk::DiskState>(s)));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->summary.count(), r.disk_stats.size());
  }
  // Fault machinery never engaged in this run.
  EXPECT_EQ(m.find("failovers")->counter, 0u);
  EXPECT_EQ(m.find("unavailable_requests")->counter, 0u);
}

// Observability must be a pure observer: switching it on cannot perturb the
// simulation. The serialized result (which never includes obs artifacts) has
// to come out byte-identical with and without the recorder and registry.
TEST(PaperExampleTrace, InstrumentationDoesNotPerturbTheRun) {
  auto plain_cfg = traced_config();
  plain_cfg.obs = obs::ObsConfig{};
  const auto plain = traced_run(plain_cfg);
  EXPECT_EQ(plain.trace_recorder, nullptr);
  EXPECT_EQ(plain.metrics, nullptr);

  const auto traced = traced_run(traced_config());
  EXPECT_EQ(plain.to_json(/*include_disks=*/true),
            traced.to_json(/*include_disks=*/true));
}

// The recorded trace itself is a pure function of the run: two identical
// runs produce bit-identical binary trace images.
TEST(PaperExampleTrace, TraceIsReproducible) {
  const auto a = traced_run(traced_config());
  const auto b = traced_run(traced_config());
  std::stringstream sa, sb;
  a.trace_recorder->write_binary(sa);
  b.trace_recorder->write_binary(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

}  // namespace
}  // namespace eas
