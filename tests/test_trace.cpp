// Tests for traces, parsers and the calibrated synthetic generators.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/parsers.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace eas::trace {
namespace {

TEST(Trace, SortsRecordsByTime) {
  Trace t({{3.0, 0, 1, true}, {1.0, 1, 1, true}, {2.0, 2, 1, true}});
  EXPECT_DOUBLE_EQ(t[0].time, 1.0);
  EXPECT_DOUBLE_EQ(t[2].time, 3.0);
  EXPECT_DOUBLE_EQ(t.duration(), 2.0);
}

TEST(Trace, SortIsStableForEqualTimes) {
  Trace t({{1.0, 10, 1, true}, {1.0, 20, 1, true}, {1.0, 30, 1, true}});
  EXPECT_EQ(t[0].data, 10u);
  EXPECT_EQ(t[1].data, 20u);
  EXPECT_EQ(t[2].data, 30u);
}

TEST(Trace, RejectsNegativeTimes) {
  EXPECT_THROW(Trace({{-1.0, 0, 1, true}}), InvariantError);
}

TEST(Trace, ReadsOnlyDropsWrites) {
  Trace t({{1.0, 0, 1, true}, {2.0, 1, 1, false}, {3.0, 2, 1, true}});
  const auto reads = t.reads_only();
  EXPECT_EQ(reads.size(), 2u);
  for (const auto& r : reads.records()) EXPECT_TRUE(r.is_read);
}

TEST(Trace, PrefixAndRebase) {
  Trace t({{5.0, 0, 1, true}, {6.0, 1, 1, true}, {9.0, 2, 1, true}});
  const auto p = t.prefix(2);
  EXPECT_EQ(p.size(), 2u);
  const auto r = p.rebased();
  EXPECT_DOUBLE_EQ(r.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(r.end_time(), 1.0);
}

TEST(Trace, PrefixLargerThanSizeIsWholeTrace) {
  Trace t({{1.0, 0, 1, true}});
  EXPECT_EQ(t.prefix(100).size(), 1u);
}

TEST(Trace, DensifyRemapsInFirstAppearanceOrder) {
  Trace t({{1.0, 500, 1, true}, {2.0, 7, 1, true}, {3.0, 500, 1, true}});
  const auto d = t.densified();
  EXPECT_EQ(d[0].data, 0u);
  EXPECT_EQ(d[1].data, 1u);
  EXPECT_EQ(d[2].data, 0u);
  EXPECT_EQ(d.data_universe_size(), 2u);
}

TEST(Trace, StatsCountDistinctDataAndRates) {
  Trace t({{0.0, 0, 1, true}, {1.0, 0, 1, true}, {2.0, 1, 1, true}});
  const auto s = t.compute_stats();
  EXPECT_EQ(s.num_records, 3u);
  EXPECT_EQ(s.num_distinct_data, 2u);
  EXPECT_DOUBLE_EQ(s.duration_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_interarrival, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_rate, 1.5);
}

// ---------------------------------------------------------------- parsers

TEST(SpcParser, ParsesFinancialFormatAndDensifies) {
  std::istringstream in(
      "0,1234,4096,r,0.5\n"
      "0,5678,8192,W,1.0\n"
      "1,1234,4096,R,2.0\n");
  ParseReport report;
  ParseOptions opts;
  opts.reads_only = false;
  const auto t = parse_spc(in, opts, &report);
  EXPECT_EQ(report.parsed, 3u);
  EXPECT_EQ(t.size(), 3u);
  // (ASU 0, LBA 1234) and (ASU 1, LBA 1234) must be distinct data.
  EXPECT_NE(t[0].data, t[2].data);
  EXPECT_FALSE(t[1].is_read);
  EXPECT_EQ(t[1].size_bytes, 8192u);
  EXPECT_DOUBLE_EQ(t.start_time(), 0.0);  // rebased
}

TEST(SpcParser, ReadsOnlyFiltersWrites) {
  std::istringstream in(
      "0,1,512,r,0.0\n"
      "0,2,512,w,1.0\n");
  ParseReport report;
  const auto t = parse_spc(in, {}, &report);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(report.skipped_writes, 1u);
}

TEST(SpcParser, StrictModeThrowsWithLineNumber) {
  std::istringstream in(
      "0,1,512,r,0.0\n"
      "garbage line\n");
  try {
    parse_spc(in, {});
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(SpcParser, LenientModeSkipsAndCounts) {
  std::istringstream in(
      "0,1,512,r,0.0\n"
      "bogus\n"
      "0,2,512,r,1.0\n");
  ParseOptions opts;
  opts.lenient = true;
  ParseReport report;
  const auto t = parse_spc(in, opts, &report);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(report.skipped_malformed, 1u);
}

TEST(SpcParser, HonoursMaxRecordsAndTimeScale) {
  std::istringstream in(
      "0,1,512,r,1000\n"
      "0,2,512,r,2000\n"
      "0,3,512,r,3000\n");
  ParseOptions opts;
  opts.max_records = 2;
  opts.time_scale = 1e-3;  // ms -> s
  const auto t = parse_spc(in, opts);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.duration(), 1.0);
}

TEST(SpcParser, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "0,1,512,r,0.0\n");
  EXPECT_EQ(parse_spc(in, {}).size(), 1u);
}

TEST(CelloParser, ParsesWhitespaceFormat) {
  std::istringstream in(
      "0.25  3  8800  2048  r\n"
      "0.50  3  8800  2048  w\n"
      "0.75  4  8800  2048  r\n");
  ParseOptions opts;
  opts.reads_only = false;
  const auto t = parse_cello_text(in, opts);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].data, t[1].data);  // same device+block
  EXPECT_NE(t[0].data, t[2].data);  // different device
}

TEST(CelloParser, RejectsShortLines) {
  std::istringstream in("0.25 3 8800\n");
  EXPECT_THROW(parse_cello_text(in, {}), TraceParseError);
}

TEST(CsvRoundTrip, WriteThenParseIsIdentity) {
  Trace original({{0.0, 3, 4096, true},
                  {1.5, 9, 512, true},
                  {2.25, 3, 1024, true}});
  std::ostringstream out;
  write_csv(out, original);
  std::istringstream in(out.str());
  const auto parsed = parse_csv(in, {});
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].time, original[i].time);
    EXPECT_EQ(parsed[i].data, original[i].data);
    EXPECT_EQ(parsed[i].size_bytes, original[i].size_bytes);
  }
}

TEST(CsvParser, RequiresHeader) {
  std::istringstream in("0.0,1,512,r\n");
  EXPECT_THROW(parse_csv(in, {}), TraceParseError);
}

// ------------------------------------------------------------- synthetic

TEST(Synthetic, ProducesRequestedScale) {
  SyntheticTraceConfig cfg;
  cfg.num_requests = 5000;
  cfg.num_data = 1000;
  const auto t = make_synthetic_trace(cfg);
  EXPECT_EQ(t.size(), 5000u);
  const auto s = t.compute_stats();
  EXPECT_GT(s.num_distinct_data, 500u);
  EXPECT_LE(t.data_universe_size(), 1000u);
  for (const auto& r : t.records()) EXPECT_TRUE(r.is_read);
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticTraceConfig cfg;
  cfg.num_requests = 1000;
  cfg.seed = 9;
  const auto a = make_synthetic_trace(cfg);
  const auto b = make_synthetic_trace(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].data, b[i].data);
  }
}

TEST(Synthetic, MeanRateIsRespected) {
  SyntheticTraceConfig cfg;
  cfg.num_requests = 40000;
  cfg.mean_rate = 25.0;
  cfg.burst_rate_multiplier = 10.0;
  cfg.burst_time_fraction = 0.1;
  const auto s = make_synthetic_trace(cfg).compute_stats();
  EXPECT_NEAR(s.mean_rate, 25.0, 5.0);
}

TEST(Synthetic, PlainPoissonHasUnitCv) {
  SyntheticTraceConfig cfg;
  cfg.num_requests = 40000;
  cfg.burst_rate_multiplier = 1.0;  // degenerate MMPP == Poisson
  const auto s = make_synthetic_trace(cfg).compute_stats();
  EXPECT_NEAR(s.interarrival_cv, 1.0, 0.05);
}

TEST(Synthetic, CelloIsBurstierThanFinancial) {
  // The load-bearing property from §A.4: Cello's interarrival CV is far
  // above Financial1's, which itself stays near Poisson.
  const auto cello = make_cello_like(1).prefix(40000).compute_stats();
  const auto financial = make_financial_like(1).prefix(40000).compute_stats();
  EXPECT_GT(cello.interarrival_cv, 2.0);
  EXPECT_LT(financial.interarrival_cv, 1.5);
  EXPECT_GT(cello.interarrival_cv, financial.interarrival_cv * 1.5);
}

TEST(Synthetic, PopularityIsZipfSkewed) {
  const auto s = make_cello_like(1).prefix(40000).compute_stats();
  // Top 1% of data items should draw a disproportionate share of accesses.
  EXPECT_GT(s.top1pct_access_share, 0.15);
}

TEST(Synthetic, ValidatesConfig) {
  SyntheticTraceConfig cfg;
  cfg.mean_rate = 0.0;
  EXPECT_THROW(make_synthetic_trace(cfg), InvariantError);
  cfg = {};
  cfg.burst_rate_multiplier = 0.5;
  EXPECT_THROW(make_synthetic_trace(cfg), InvariantError);
  cfg = {};
  cfg.burst_time_fraction = 1.0;
  EXPECT_THROW(make_synthetic_trace(cfg), InvariantError);
}

}  // namespace
}  // namespace eas::trace
