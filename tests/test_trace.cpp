// Tests for traces, parsers and the calibrated synthetic generators.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>

#include "trace/parsers.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace eas::trace {
namespace {

TEST(Trace, SortsRecordsByTime) {
  Trace t({{3.0, 0, 1, true}, {1.0, 1, 1, true}, {2.0, 2, 1, true}});
  EXPECT_DOUBLE_EQ(t[0].time, 1.0);
  EXPECT_DOUBLE_EQ(t[2].time, 3.0);
  EXPECT_DOUBLE_EQ(t.duration(), 2.0);
}

TEST(Trace, SortIsStableForEqualTimes) {
  Trace t({{1.0, 10, 1, true}, {1.0, 20, 1, true}, {1.0, 30, 1, true}});
  EXPECT_EQ(t[0].data, 10u);
  EXPECT_EQ(t[1].data, 20u);
  EXPECT_EQ(t[2].data, 30u);
}

TEST(Trace, RejectsNegativeTimes) {
  EXPECT_THROW(Trace({{-1.0, 0, 1, true}}), InvariantError);
}

TEST(Trace, ReadsOnlyDropsWrites) {
  Trace t({{1.0, 0, 1, true}, {2.0, 1, 1, false}, {3.0, 2, 1, true}});
  const auto reads = t.reads_only();
  EXPECT_EQ(reads.size(), 2u);
  for (const auto& r : reads.records()) EXPECT_TRUE(r.is_read);
}

TEST(Trace, PrefixAndRebase) {
  Trace t({{5.0, 0, 1, true}, {6.0, 1, 1, true}, {9.0, 2, 1, true}});
  const auto p = t.prefix(2);
  EXPECT_EQ(p.size(), 2u);
  const auto r = p.rebased();
  EXPECT_DOUBLE_EQ(r.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(r.end_time(), 1.0);
}

TEST(Trace, PrefixLargerThanSizeIsWholeTrace) {
  Trace t({{1.0, 0, 1, true}});
  EXPECT_EQ(t.prefix(100).size(), 1u);
}

TEST(Trace, DensifyRemapsInFirstAppearanceOrder) {
  Trace t({{1.0, 500, 1, true}, {2.0, 7, 1, true}, {3.0, 500, 1, true}});
  const auto d = t.densified();
  EXPECT_EQ(d[0].data, 0u);
  EXPECT_EQ(d[1].data, 1u);
  EXPECT_EQ(d[2].data, 0u);
  EXPECT_EQ(d.data_universe_size(), 2u);
}

TEST(Trace, StatsCountDistinctDataAndRates) {
  Trace t({{0.0, 0, 1, true}, {1.0, 0, 1, true}, {2.0, 1, 1, true}});
  const auto s = t.compute_stats();
  EXPECT_EQ(s.num_records, 3u);
  EXPECT_EQ(s.num_distinct_data, 2u);
  EXPECT_DOUBLE_EQ(s.duration_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_interarrival, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_rate, 1.5);
}

// ---------------------------------------------------------------- parsers

TEST(SpcParser, ParsesFinancialFormatAndDensifies) {
  std::istringstream in(
      "0,1234,4096,r,0.5\n"
      "0,5678,8192,W,1.0\n"
      "1,1234,4096,R,2.0\n");
  ParseReport report;
  ParseOptions opts;
  opts.reads_only = false;
  const auto t = parse_spc(in, opts, &report);
  EXPECT_EQ(report.parsed, 3u);
  EXPECT_EQ(t.size(), 3u);
  // (ASU 0, LBA 1234) and (ASU 1, LBA 1234) must be distinct data.
  EXPECT_NE(t[0].data, t[2].data);
  EXPECT_FALSE(t[1].is_read);
  EXPECT_EQ(t[1].size_bytes, 8192u);
  EXPECT_DOUBLE_EQ(t.start_time(), 0.0);  // rebased
}

TEST(SpcParser, ReadsOnlyFiltersWrites) {
  std::istringstream in(
      "0,1,512,r,0.0\n"
      "0,2,512,w,1.0\n");
  ParseReport report;
  const auto t = parse_spc(in, {}, &report);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(report.skipped_writes, 1u);
}

TEST(SpcParser, StrictModeThrowsWithLineNumber) {
  std::istringstream in(
      "0,1,512,r,0.0\n"
      "garbage line\n");
  try {
    parse_spc(in, {});
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(SpcParser, LenientModeSkipsAndCounts) {
  std::istringstream in(
      "0,1,512,r,0.0\n"
      "bogus\n"
      "0,2,512,r,1.0\n");
  ParseOptions opts;
  opts.lenient = true;
  ParseReport report;
  const auto t = parse_spc(in, opts, &report);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(report.skipped_malformed, 1u);
}

TEST(SpcParser, HonoursMaxRecordsAndTimeScale) {
  std::istringstream in(
      "0,1,512,r,1000\n"
      "0,2,512,r,2000\n"
      "0,3,512,r,3000\n");
  ParseOptions opts;
  opts.max_records = 2;
  opts.time_scale = 1e-3;  // ms -> s
  const auto t = parse_spc(in, opts);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.duration(), 1.0);
}

TEST(SpcParser, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "0,1,512,r,0.0\n");
  EXPECT_EQ(parse_spc(in, {}).size(), 1u);
}

TEST(CelloParser, ParsesWhitespaceFormat) {
  std::istringstream in(
      "0.25  3  8800  2048  r\n"
      "0.50  3  8800  2048  w\n"
      "0.75  4  8800  2048  r\n");
  ParseOptions opts;
  opts.reads_only = false;
  const auto t = parse_cello_text(in, opts);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].data, t[1].data);  // same device+block
  EXPECT_NE(t[0].data, t[2].data);  // different device
}

TEST(CelloParser, RejectsShortLines) {
  std::istringstream in("0.25 3 8800\n");
  EXPECT_THROW(parse_cello_text(in, {}), TraceParseError);
}

TEST(CsvRoundTrip, WriteThenParseIsIdentity) {
  Trace original({{0.0, 3, 4096, true},
                  {1.5, 9, 512, true},
                  {2.25, 3, 1024, true}});
  std::ostringstream out;
  write_csv(out, original);
  std::istringstream in(out.str());
  const auto parsed = parse_csv(in, {});
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].time, original[i].time);
    EXPECT_EQ(parsed[i].data, original[i].data);
    EXPECT_EQ(parsed[i].size_bytes, original[i].size_bytes);
  }
}

TEST(CsvParser, RequiresHeader) {
  std::istringstream in("0.0,1,512,r\n");
  EXPECT_THROW(parse_csv(in, {}), TraceParseError);
}

// --------------------------------------------------- corrupt-input fixtures
//
// The parsers feed the simulator, whose schedule_at contract requires
// finite non-negative times; anything non-finite must die here, at the
// parse boundary, with a line number — not deep inside the event loop.

TEST(ParserHardening, NonFiniteTimesRejectedWithLineNumber) {
  const char* bad_times[] = {"inf", "-inf", "nan", "1e999"};
  for (const char* t : bad_times) {
    std::istringstream spc(std::string("0,1,512,r,") + t + "\n");
    try {
      parse_spc(spc, {});
      FAIL() << "SPC accepted timestamp " << t;
    } catch (const TraceParseError& e) {
      EXPECT_EQ(e.line(), 1u) << t;
    }
    std::istringstream cello(std::string(t) + " 3 8800 2048 r\n");
    EXPECT_THROW(parse_cello_text(cello, {}), TraceParseError) << t;
    std::istringstream csv(std::string("time,data,size,op\n") + t +
                           ",1,512,r\n");
    EXPECT_THROW(parse_csv(csv, {}), TraceParseError) << t;
  }
}

TEST(ParserHardening, NegativeTimeAndSizeRejected) {
  std::istringstream neg_time("0,1,512,r,-2.0\n");
  EXPECT_THROW(parse_spc(neg_time, {}), TraceParseError);
  std::istringstream neg_size("0,1,-512,r,2.0\n");
  EXPECT_THROW(parse_spc(neg_size, {}), TraceParseError);
}

TEST(ParserHardening, CsvDataIdMustFit32Bits) {
  // 2^32 would silently wrap to 0 through the DataId cast, and 2^32 - 1
  // would forge the kInvalidData sentinel.
  std::istringstream wrap("time,data,size,op\n1.0,4294967296,512,r\n");
  EXPECT_THROW(parse_csv(wrap, {}), TraceParseError);
  std::istringstream sentinel("time,data,size,op\n1.0,4294967295,512,r\n");
  EXPECT_THROW(parse_csv(sentinel, {}), TraceParseError);
  std::istringstream ok("time,data,size,op\n1.0,4294967294,512,r\n");
  EXPECT_EQ(parse_csv(ok, {}).size(), 1u);
}

TEST(ParserHardening, LenientReportCarriesFirstErrorDetail) {
  std::istringstream in(
      "0,1,512,r,0.0\n"
      "0,1,512,r,nan\n"
      "total junk\n");
  ParseOptions opts;
  opts.lenient = true;
  ParseReport report;
  const auto t = parse_spc(in, opts, &report);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(report.skipped_malformed, 2u);
  EXPECT_EQ(report.first_error_line, 2u);
  EXPECT_NE(report.first_error.find("timestamp"), std::string::npos)
      << report.first_error;
}

TEST(ParserHardening, ErrorMessagesNameTheBadField) {
  struct Case {
    const char* line;
    const char* expect;  // substring of the error message
  };
  const Case cases[] = {
      {"x,1,512,r,0.0", "ASU"},
      {"0,1,zz,r,0.0", "size"},
      {"0,1,512,q,0.0", "opcode"},
      {"0,1,512,r,later", "timestamp"},
  };
  for (const auto& c : cases) {
    std::istringstream in(std::string(c.line) + "\n");
    try {
      parse_spc(in, {});
      FAIL() << "accepted: " << c.line;
    } catch (const TraceParseError& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect), std::string::npos)
          << c.line << " -> " << e.what();
    }
  }
}

TEST(ParserHardening, FuzzedCorruptionNeverCrashesLenientParsers) {
  // Deterministic fuzz: mutate valid lines (truncate, splice binary bytes,
  // duplicate fields, swap separators) and require that lenient parsing
  // never throws and every surviving record is simulator-safe.
  const std::string seeds[] = {
      "0,1234,4096,r,0.5", "1,5678,512,w,2.25", "2,9,65536,R,10.0"};
  std::uint64_t state = 0x2545F4914F6CDD1DULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::ostringstream fixture;
  for (int i = 0; i < 500; ++i) {
    std::string line = seeds[next() % 3];
    switch (next() % 5) {
      case 0:
        line = line.substr(0, next() % (line.size() + 1));  // truncate
        break;
      case 1:
        line[next() % line.size()] =
            static_cast<char>(next() % 256);  // byte flip (may be NUL)
        break;
      case 2:
        line += "," + line;  // field duplication
        break;
      case 3:
        for (auto& ch : line) {
          if (ch == ',') ch = ';';  // wrong separator
        }
        break;
      case 4:
        break;  // leave valid
    }
    fixture << line << "\n";
  }
  ParseOptions opts;
  opts.lenient = true;
  opts.reads_only = false;
  ParseReport report;
  std::istringstream in(fixture.str());
  Trace t(std::vector<TraceRecord>{});
  ASSERT_NO_THROW(t = parse_spc(in, opts, &report));
  EXPECT_EQ(report.parsed, t.size());
  EXPECT_GT(report.parsed, 0u);        // the untouched lines survive
  EXPECT_GT(report.skipped_malformed, 0u);
  for (const auto& r : t.records()) {
    EXPECT_TRUE(std::isfinite(r.time));
    EXPECT_GE(r.time, 0.0);
  }
}

// ------------------------------------------------------------- synthetic

TEST(Synthetic, ProducesRequestedScale) {
  SyntheticTraceConfig cfg;
  cfg.num_requests = 5000;
  cfg.num_data = 1000;
  const auto t = make_synthetic_trace(cfg);
  EXPECT_EQ(t.size(), 5000u);
  const auto s = t.compute_stats();
  EXPECT_GT(s.num_distinct_data, 500u);
  EXPECT_LE(t.data_universe_size(), 1000u);
  for (const auto& r : t.records()) EXPECT_TRUE(r.is_read);
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticTraceConfig cfg;
  cfg.num_requests = 1000;
  cfg.seed = 9;
  const auto a = make_synthetic_trace(cfg);
  const auto b = make_synthetic_trace(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].data, b[i].data);
  }
}

TEST(Synthetic, MeanRateIsRespected) {
  SyntheticTraceConfig cfg;
  cfg.num_requests = 40000;
  cfg.mean_rate = 25.0;
  cfg.burst_rate_multiplier = 10.0;
  cfg.burst_time_fraction = 0.1;
  const auto s = make_synthetic_trace(cfg).compute_stats();
  EXPECT_NEAR(s.mean_rate, 25.0, 5.0);
}

TEST(Synthetic, PlainPoissonHasUnitCv) {
  SyntheticTraceConfig cfg;
  cfg.num_requests = 40000;
  cfg.burst_rate_multiplier = 1.0;  // degenerate MMPP == Poisson
  const auto s = make_synthetic_trace(cfg).compute_stats();
  EXPECT_NEAR(s.interarrival_cv, 1.0, 0.05);
}

TEST(Synthetic, CelloIsBurstierThanFinancial) {
  // The load-bearing property from §A.4: Cello's interarrival CV is far
  // above Financial1's, which itself stays near Poisson.
  const auto cello = make_cello_like(1).prefix(40000).compute_stats();
  const auto financial = make_financial_like(1).prefix(40000).compute_stats();
  EXPECT_GT(cello.interarrival_cv, 2.0);
  EXPECT_LT(financial.interarrival_cv, 1.5);
  EXPECT_GT(cello.interarrival_cv, financial.interarrival_cv * 1.5);
}

TEST(Synthetic, PopularityIsZipfSkewed) {
  const auto s = make_cello_like(1).prefix(40000).compute_stats();
  // Top 1% of data items should draw a disproportionate share of accesses.
  EXPECT_GT(s.top1pct_access_share, 0.15);
}

TEST(Synthetic, ValidatesConfig) {
  SyntheticTraceConfig cfg;
  cfg.mean_rate = 0.0;
  EXPECT_THROW(make_synthetic_trace(cfg), InvariantError);
  cfg = {};
  cfg.burst_rate_multiplier = 0.5;
  EXPECT_THROW(make_synthetic_trace(cfg), InvariantError);
  cfg = {};
  cfg.burst_time_fraction = 1.0;
  EXPECT_THROW(make_synthetic_trace(cfg), InvariantError);
}

}  // namespace
}  // namespace eas::trace
