// Property tests for mixed read/write runs: determinism, conservation of
// requests across diversion/reclaim, and read-after-write routing at the
// system level.
#include <gtest/gtest.h>

#include "core/cost_scheduler.hpp"
#include "core/write_offload.hpp"
#include "placement/placement.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"

namespace eas {
namespace {

struct MixedRig {
  placement::PlacementMap placement;
  trace::Trace trace;
  storage::SystemConfig cfg;
};

MixedRig make_rig(std::uint64_t seed, double write_fraction) {
  placement::ZipfPlacementConfig pc;
  pc.num_disks = 16;
  pc.num_data = 300;
  pc.replication_factor = 2;
  pc.seed = seed;

  trace::SyntheticTraceConfig tc;
  tc.num_requests = 4000;
  tc.num_data = 300;
  tc.mean_rate = 7.0;
  tc.write_fraction = write_fraction;
  tc.seed = seed;

  return MixedRig{placement::make_zipf_placement(pc),
                  trace::make_synthetic_trace(tc),
                  storage::SystemConfig{}};
}

storage::RunResult run_mixed(const MixedRig& rig,
                             core::WriteOffloadManager& offloader) {
  core::CostFunctionScheduler sched;
  power::FixedThresholdPolicy policy;
  return storage::run_online_mixed(rig.cfg, rig.placement, rig.trace, sched,
                                   policy, offloader);
}

class MixedSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixedSeedTest, DeterministicAcrossRuns) {
  const auto rig = make_rig(GetParam(), 0.25);
  core::WriteOffloadManager m1, m2;
  const auto a = run_mixed(rig, m1);
  const auto b = run_mixed(rig, m2);
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
  EXPECT_EQ(a.total_spin_ups(), b.total_spin_ups());
  EXPECT_EQ(m1.stats().writes_diverted, m2.stats().writes_diverted);
  EXPECT_EQ(m1.stats().reclaims, m2.stats().reclaims);
}

TEST_P(MixedSeedTest, OffloadAccountingIsConserved) {
  const auto rig = make_rig(GetParam() + 50, 0.3);
  core::WriteOffloadManager mgr;
  const auto r = run_mixed(rig, mgr);
  const auto& st = mgr.stats();

  EXPECT_EQ(r.total_requests, rig.trace.size());
  // Every write is accounted to exactly one of the three outcomes.
  EXPECT_EQ(st.writes_total,
            st.writes_home + st.writes_diverted + st.writes_woke_home);
  EXPECT_EQ(st.writes_total, rig.trace.size() - rig.trace.reads_only().size());
  // Blocks still diverted at the end are those diverted and never reclaimed
  // or overwritten home; reclaims can never exceed diversions.
  EXPECT_LE(st.reclaims, st.writes_diverted);
  EXPECT_LE(mgr.diverted_blocks(), st.writes_diverted);
}

TEST_P(MixedSeedTest, PerDiskServiceCountsMatchTotals) {
  const auto rig = make_rig(GetParam() + 100, 0.2);
  core::WriteOffloadManager mgr;
  const auto r = run_mixed(rig, mgr);
  std::uint64_t served = 0;
  for (const auto& ds : r.disk_stats) served += ds.requests_served;
  EXPECT_EQ(served, rig.trace.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedSeedTest,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(MixedRun, ReadOnlyTraceMatchesPlainOnlineRun) {
  // write_fraction = 0: the mixed runner must behave exactly like the plain
  // online runner (no diversions, identical routing).
  const auto rig = make_rig(3, 0.0);
  core::WriteOffloadManager mgr;
  const auto mixed = run_mixed(rig, mgr);

  core::CostFunctionScheduler sched;
  power::FixedThresholdPolicy policy;
  const auto plain = storage::run_online(rig.cfg, rig.placement, rig.trace,
                                         sched, policy);
  EXPECT_DOUBLE_EQ(mixed.total_energy(), plain.total_energy());
  EXPECT_EQ(mixed.total_spin_ups(), plain.total_spin_ups());
  EXPECT_EQ(mgr.stats().writes_total, 0u);
}

}  // namespace
}  // namespace eas
