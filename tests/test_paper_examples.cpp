// End-to-end validation against the paper's §2.3 / Fig 2-4 worked examples.
// These are the strongest correctness anchors in the repository: every
// number asserted below appears in the paper's running text.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/conflict_graph.hpp"
#include "core/energy_model.hpp"
#include "core/mwis_scheduler.hpp"
#include "core/offline_eval.hpp"
#include "core/wsc_scheduler.hpp"
#include "graph/mwis.hpp"
#include "graph/set_cover.hpp"
#include "paper_example.hpp"

namespace eas {
namespace {

using testing::example_batch_trace;
using testing::example_offline_trace;
using testing::example_placement;
using testing::example_power;

core::OfflineAssignment assignment_of(std::vector<DiskId> disks) {
  core::OfflineAssignment a;
  a.disk_of_request = std::move(disks);
  return a;
}

// ---------------------------------------------------------------- Fig 2 ---

TEST(PaperBatchExample, ScheduleAConsumes15) {
  // A: r1,r5 -> d1; r2,r3 -> d2; r4,r6 -> d3.
  const auto report =
      core::evaluate_offline(example_batch_trace(), assignment_of({0, 1, 1, 2, 0, 2}),
                             4, example_power());
  EXPECT_DOUBLE_EQ(report.total_energy(), 15.0);
}

TEST(PaperBatchExample, ScheduleBConsumes10) {
  // B: r1,r2,r3,r5 -> d1; r4,r6 -> d3.
  const auto report =
      core::evaluate_offline(example_batch_trace(), assignment_of({0, 0, 0, 2, 0, 2}),
                             4, example_power());
  EXPECT_DOUBLE_EQ(report.total_energy(), 10.0);
}

TEST(PaperBatchExample, AlwaysOnConsumes20OverTheHorizon) {
  const auto report =
      core::evaluate_offline(example_batch_trace(), assignment_of({0, 0, 0, 2, 0, 2}),
                             4, example_power());
  // Horizon = last arrival (0) + T_B (5): 4 disks * 1 W * 5 s.
  EXPECT_DOUBLE_EQ(report.always_on_energy(example_power()), 20.0);
}

TEST(PaperBatchExample, WscInstanceMatchesTheFigure) {
  // All six requests concurrent; all disks standby => every candidate disk
  // weighs E_up + E_down + T_B * P_I = 5. Minimum-weight cover is {d1, d3}
  // with weight 10 (= schedule B's energy).
  const auto trace = example_batch_trace();
  const auto placement = example_placement();

  graph::SetCoverInstance instance;
  instance.num_elements = trace.size();
  std::vector<DiskId> disks;
  for (DiskId k = 0; k < 4; ++k) {
    graph::SetCoverInstance::Set s;
    s.weight = example_power().max_request_energy();
    for (std::size_t e = 0; e < trace.size(); ++e) {
      if (placement.stores(trace[e].data, k)) s.elements.push_back(e);
    }
    instance.sets.push_back(std::move(s));
    disks.push_back(k);
  }

  const auto exact = graph::exact_set_cover(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(exact->total_weight, 10.0);
  EXPECT_EQ(exact->chosen_sets.size(), 2u);
  EXPECT_TRUE(exact->covers(instance));
  const std::set<std::size_t> chosen(exact->chosen_sets.begin(),
                                     exact->chosen_sets.end());
  EXPECT_TRUE(chosen.contains(0));  // d1
  EXPECT_TRUE(chosen.contains(2));  // d3

  // The greedy H_n-approximation happens to find the optimum here too.
  const auto greedy = graph::greedy_weighted_set_cover(instance);
  EXPECT_DOUBLE_EQ(greedy.total_weight, 10.0);
}

// ---------------------------------------------------------------- Fig 3 ---

TEST(PaperOfflineExample, ScheduleBConsumes23) {
  // Same assignment as batch-B but with staggered arrivals: the paper walks
  // through d1 = 13 J and d3 = 10 J.
  const auto report = core::evaluate_offline(
      example_offline_trace(), assignment_of({0, 0, 0, 2, 0, 2}), 4,
      example_power());
  EXPECT_DOUBLE_EQ(report.disk_stats[0].total_joules(), 13.0);
  EXPECT_DOUBLE_EQ(report.disk_stats[2].total_joules(), 10.0);
  EXPECT_DOUBLE_EQ(report.total_energy(), 23.0);
}

TEST(PaperOfflineExample, ScheduleCConsumes19) {
  // C: r1..r3 -> d1, r4 -> d3, r5,r6 -> d4. The running text derives
  // 8 + 5 + 6 = 19 J (the figure caption's "21" contradicts its own text).
  const auto report = core::evaluate_offline(
      example_offline_trace(), assignment_of({0, 0, 0, 2, 3, 3}), 4,
      example_power());
  EXPECT_DOUBLE_EQ(report.disk_stats[0].total_joules(), 8.0);
  EXPECT_DOUBLE_EQ(report.disk_stats[2].total_joules(), 5.0);
  EXPECT_DOUBLE_EQ(report.disk_stats[3].total_joules(), 6.0);
  EXPECT_DOUBLE_EQ(report.total_energy(), 19.0);
}

TEST(PaperOfflineExample, PerRequestEnergiesFollowLemma1) {
  // §3.1.1 walks through schedule C: r1 consumes 1 (idle until r2), r3
  // consumes 5 (idle until spin-down).
  const auto report = core::evaluate_offline(
      example_offline_trace(), assignment_of({0, 0, 0, 2, 3, 3}), 4,
      example_power());
  EXPECT_DOUBLE_EQ(report.request_energy[0], 1.0);  // r1: idle 0->1
  EXPECT_DOUBLE_EQ(report.request_energy[1], 2.0);  // r2: idle 1->3
  EXPECT_DOUBLE_EQ(report.request_energy[2], 5.0);  // r3: full breakeven
  EXPECT_DOUBLE_EQ(report.request_energy[3], 5.0);  // r4: last on d3
  EXPECT_DOUBLE_EQ(report.request_energy[4], 1.0);  // r5: idle 12->13
  EXPECT_DOUBLE_EQ(report.request_energy[5], 5.0);  // r6: last on d4

  // The energy-saving view: r1 saves 4 (= 5 - 1), as in the text.
  const auto p = example_power();
  EXPECT_DOUBLE_EQ(p.max_request_energy() - report.request_energy[0], 4.0);
}

// ---------------------------------------------------------------- Fig 4 ---

TEST(PaperMwisExample, ConflictGraphHasTheFigure4Nodes) {
  core::ConflictGraphOptions opts;
  opts.successor_horizon = 2;
  const auto g = core::build_conflict_graph(
      example_offline_trace(), example_placement(), example_power(), opts);

  // Expected X(i,j,k) nodes (1-based in the paper, 0-based here):
  //   X(1,2,1)=4, X(1,3,1)=2, X(2,3,1)=3, X(2,3,2)=3, X(3,4,4)=3,
  //   X(5,6,4)=4  (the figure's "X(4,6,4)" label: t6-t4 = 8 > T_B, so the
  //   pair it can mean is r5,r6 on d4).
  const std::set<std::tuple<std::uint32_t, std::uint32_t, DiskId>> expected = {
      {0, 1, 0}, {0, 2, 0}, {1, 2, 0}, {1, 2, 1}, {2, 3, 3}, {4, 5, 3}};
  ASSERT_EQ(g.nodes.size(), expected.size());
  for (const auto& n : g.nodes) {
    EXPECT_TRUE(expected.contains({n.i, n.j, n.k}))
        << "unexpected node X(" << n.i + 1 << "," << n.j + 1 << ","
        << n.k + 1 << ")";
    EXPECT_DOUBLE_EQ(
        n.weight, core::pairwise_energy_saving(
                      example_offline_trace()[n.i].time,
                      example_offline_trace()[n.j].time, example_power()));
  }
}

TEST(PaperMwisExample, ExactMwisSavingIs11) {
  core::ConflictGraphOptions opts;
  opts.successor_horizon = 2;
  const auto g = core::build_conflict_graph(
      example_offline_trace(), example_placement(), example_power(), opts);
  const auto sol = graph::exact_mwis(g.to_weighted_graph());
  // Total saving 11 = 6 requests * 5 J ceiling - 19 J optimal energy.
  EXPECT_DOUBLE_EQ(sol.total_weight, 11.0);
}

TEST(PaperMwisExample, ExactSchedulerReproducesScheduleC) {
  core::MwisOptions opts;
  opts.algorithm = core::MwisOptions::Algorithm::kExact;
  opts.graph.successor_horizon = 2;
  core::MwisOfflineScheduler scheduler(opts);

  const auto trace = example_offline_trace();
  const auto placement = example_placement();
  const auto assignment =
      scheduler.schedule(trace, placement, example_power());
  EXPECT_DOUBLE_EQ(scheduler.last_selected_saving(), 11.0);

  const auto report =
      core::evaluate_offline(trace, assignment, 4, example_power());
  EXPECT_DOUBLE_EQ(report.total_energy(), 19.0);
}

TEST(PaperMwisExample, GreedyGwminAlsoFindsTheOptimumHere) {
  core::MwisOptions opts;
  opts.algorithm = core::MwisOptions::Algorithm::kGwmin;
  opts.graph.successor_horizon = 2;
  core::MwisOfflineScheduler scheduler(opts);

  const auto trace = example_offline_trace();
  const auto assignment =
      scheduler.schedule(trace, example_placement(), example_power());
  const auto report =
      core::evaluate_offline(trace, assignment, 4, example_power());
  EXPECT_DOUBLE_EQ(report.total_energy(), 19.0);
}

TEST(PaperMwisExample, HorizonOneStillBeatsScheduleB) {
  // With successor_horizon = 1 the candidate set loses X(1,3,1) but keeps
  // every node of the optimal selection, so the result is unchanged.
  core::MwisOptions opts;
  opts.algorithm = core::MwisOptions::Algorithm::kExact;
  opts.graph.successor_horizon = 1;
  core::MwisOfflineScheduler scheduler(opts);

  const auto trace = example_offline_trace();
  const auto assignment =
      scheduler.schedule(trace, example_placement(), example_power());
  const auto report =
      core::evaluate_offline(trace, assignment, 4, example_power());
  EXPECT_DOUBLE_EQ(report.total_energy(), 19.0);
}

}  // namespace
}  // namespace eas
