// Unit tests for the scheduler strategies against a scripted SystemView.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/wsc_scheduler.hpp"
#include "paper_example.hpp"
#include "util/check.hpp"

namespace eas::core {
namespace {

using testing::example_placement;
using testing::example_power;

/// A SystemView whose per-disk snapshots are set directly by the test.
class FakeView final : public SystemView {
 public:
  explicit FakeView(placement::PlacementMap placement)
      : placement_(std::move(placement)),
        snapshots_(placement_.num_disks()) {}

  double now() const override { return now_; }
  const placement::PlacementMap& placement() const override {
    return placement_;
  }
  DiskSnapshot snapshot(DiskId k) const override { return snapshots_.at(k); }
  const disk::DiskPowerParams& power_params() const override { return power_; }

  void set_now(double t) { now_ = t; }
  DiskSnapshot& at(DiskId k) { return snapshots_.at(k); }

 private:
  placement::PlacementMap placement_;
  std::vector<DiskSnapshot> snapshots_;
  disk::DiskPowerParams power_ = testing::example_power();
  double now_ = 0.0;
};

disk::Request request_for(DataId data) {
  disk::Request r;
  r.id = 1;
  r.data = data;
  return r;
}

TEST(StaticScheduler, AlwaysPicksTheOriginalLocation) {
  FakeView view(example_placement());
  StaticScheduler sched;
  for (DataId b = 0; b < 6; ++b) {
    EXPECT_EQ(sched.pick(request_for(b), view),
              view.placement().original(b));
  }
}

TEST(RandomScheduler, OnlyPicksReplicaLocationsAndUsesAllOfThem) {
  FakeView view(example_placement());
  RandomScheduler sched(3);
  std::set<DiskId> seen;
  for (int i = 0; i < 200; ++i) {
    const DiskId k = sched.pick(request_for(2), view);  // b3: disks {0,1,3}
    EXPECT_TRUE(view.placement().stores(2, k));
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three replicas exercised
}

TEST(RandomScheduler, OfflineAssignmentIsValidAndSeedDeterministic) {
  const auto trace = testing::example_offline_trace();
  RandomScheduler a(5), b(5);
  const auto sa = a.schedule(trace, example_placement(), example_power());
  const auto sb = b.schedule(trace, example_placement(), example_power());
  sa.validate(trace, example_placement());
  EXPECT_EQ(sa.disk_of_request, sb.disk_of_request);
}

TEST(CostFunctionScheduler, PureEnergyPrefersActiveOverStandby) {
  FakeView view(example_placement());
  // b3 lives on disks 0, 1, 3.
  view.at(0).state = disk::DiskState::Standby;
  view.at(1).state = disk::DiskState::Active;
  view.at(1).queued_requests = 4;  // busy, but alpha=1 ignores queues
  view.at(3).state = disk::DiskState::Standby;
  CostFunctionScheduler sched(CostParams{1.0, 100.0});
  EXPECT_EQ(sched.pick(request_for(2), view), 1u);
}

TEST(CostFunctionScheduler, PurePerformancePrefersShortQueues) {
  FakeView view(example_placement());
  view.at(0).state = disk::DiskState::Active;
  view.at(0).queued_requests = 9;
  view.at(1).state = disk::DiskState::Standby;  // expensive but empty
  view.at(3).state = disk::DiskState::Active;
  view.at(3).queued_requests = 2;
  CostFunctionScheduler sched(CostParams{0.0, 100.0});
  const DiskId k = sched.pick(request_for(2), view);
  EXPECT_TRUE(k == 1u || k == 3u);
  EXPECT_NE(k, 0u);
}

TEST(CostFunctionScheduler, TieBreaksTowardTheEarliestReplica) {
  FakeView view(example_placement());
  // All three locations identical => first listed (disk 0) wins.
  CostFunctionScheduler sched;
  EXPECT_EQ(sched.pick(request_for(2), view), 0u);
}

TEST(CostFunctionScheduler, PrefersSpinningUpOverIdleWhenSavingEnergy) {
  // §3.3: a spinning-up disk can absorb requests for free; an idle disk
  // with an old T_last charges the full window extension.
  FakeView view(example_placement());
  view.set_now(100.0);
  view.at(0).state = disk::DiskState::Idle;
  view.at(0).last_request_time = 10.0;  // 90 s of extension
  view.at(1).state = disk::DiskState::SpinningUp;
  view.at(1).queued_requests = 1;
  CostFunctionScheduler sched(CostParams{1.0, 100.0});
  EXPECT_EQ(sched.pick(request_for(2), view), 1u);
}

TEST(WscBatchScheduler, EmptyBatchYieldsEmptyAssignment) {
  FakeView view(example_placement());
  WscBatchScheduler sched(0.1);
  EXPECT_TRUE(sched.assign({}, view).empty());
}

TEST(WscBatchScheduler, AssignsEveryRequestToAStoringDisk) {
  FakeView view(example_placement());
  WscBatchScheduler sched(0.1);
  std::vector<disk::Request> batch;
  for (DataId b = 0; b < 6; ++b) batch.push_back(request_for(b));
  const auto assignment = sched.assign(batch, view);
  ASSERT_EQ(assignment.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(view.placement().stores(batch[i].data, assignment[i]));
  }
}

TEST(WscBatchScheduler, PureEnergyModeFindsAMinimumFig2Cover) {
  // All disks standby (equal weight): a minimum cover uses two disks — d1
  // plus either d3 or d4 (both cover {r4, r6}), matching Fig 2's schedule B
  // energy of 2 x 5 J.
  FakeView view(example_placement());
  WscBatchScheduler sched(0.1, {}, WscBatchScheduler::WeightMode::kPureEnergy);
  std::vector<disk::Request> batch;
  for (DataId b = 0; b < 6; ++b) batch.push_back(request_for(b));
  const auto assignment = sched.assign(batch, view);
  const std::set<DiskId> used(assignment.begin(), assignment.end());
  EXPECT_EQ(used.size(), 2u);
  EXPECT_TRUE(used.contains(0u));
  EXPECT_TRUE(used.contains(2u) || used.contains(3u));
}

TEST(WscBatchScheduler, AvoidsWakingStandbyDisksWhenIdleOnesSuffice) {
  FakeView view(example_placement());
  view.set_now(10.0);
  // d1 (disk 0) idle and warm; d2/d4 standby. b2 is on {0,1}; b5 on {0,3}.
  view.at(0).state = disk::DiskState::Idle;
  view.at(0).last_request_time = 9.0;
  view.at(1).state = disk::DiskState::Standby;
  view.at(3).state = disk::DiskState::Standby;
  WscBatchScheduler sched(0.1, {}, WscBatchScheduler::WeightMode::kPureEnergy);
  const auto assignment =
      sched.assign({request_for(1), request_for(4)}, view);
  EXPECT_EQ(assignment[0], 0u);
  EXPECT_EQ(assignment[1], 0u);
}

TEST(WscBatchScheduler, BuildInstanceExposesCandidatesAndWeights) {
  FakeView view(example_placement());
  WscBatchScheduler sched(0.1, {}, WscBatchScheduler::WeightMode::kPureEnergy);
  std::vector<DiskId> candidates;
  const auto inst =
      sched.build_instance({request_for(0), request_for(3)}, view, candidates);
  // b1 -> {d1}; b4 -> {d3, d4}: three candidate disks.
  EXPECT_EQ(inst.num_elements, 2u);
  EXPECT_EQ(inst.sets.size(), 3u);
  EXPECT_EQ(candidates.size(), 3u);
  for (const auto& s : inst.sets) {
    EXPECT_DOUBLE_EQ(s.weight, example_power().max_request_energy());
  }
}

TEST(WscBatchScheduler, RejectsNonPositiveInterval) {
  EXPECT_THROW(WscBatchScheduler(0.0), InvariantError);
}

TEST(OfflineAssignment, ValidateCatchesWrongDiskAndWrongSize) {
  const auto trace = testing::example_offline_trace();
  OfflineAssignment a;
  a.disk_of_request = {0, 0, 0, 2, 0};  // one short
  EXPECT_THROW(a.validate(trace, example_placement()), InvariantError);
  a.disk_of_request = {0, 0, 0, 2, 0, 0};  // r6 (b6) is not on disk 0
  EXPECT_THROW(a.validate(trace, example_placement()), InvariantError);
}

TEST(OfflineAssignment, ArrivalsByDiskGroupsAndSorts) {
  const auto trace = testing::example_offline_trace();
  OfflineAssignment a;
  a.disk_of_request = {0, 0, 0, 2, 3, 3};
  const auto by_disk = a.arrivals_by_disk(trace, 4);
  EXPECT_EQ(by_disk[0], (std::vector<double>{0.0, 1.0, 3.0}));
  EXPECT_EQ(by_disk[2], (std::vector<double>{5.0}));
  EXPECT_EQ(by_disk[3], (std::vector<double>{12.0, 13.0}));
  EXPECT_TRUE(by_disk[1].empty());
}

TEST(SchedulerNames, AreDescriptive) {
  EXPECT_EQ(StaticScheduler().name(), "static");
  EXPECT_EQ(RandomScheduler().name(), "random");
  EXPECT_NE(CostFunctionScheduler().name().find("heuristic"),
            std::string::npos);
  EXPECT_NE(WscBatchScheduler(0.5).name().find("0.5"), std::string::npos);
}

}  // namespace
}  // namespace eas::core
