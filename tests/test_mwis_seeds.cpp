// Tests for the MWIS scheduler's seed selection (solver pipeline vs
// densest-pile greedy vs best-of-both) and its diagnostics.
#include <gtest/gtest.h>

#include "core/mwis_scheduler.hpp"
#include "core/offline_eval.hpp"
#include "paper_example.hpp"
#include "placement/placement.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace eas::core {
namespace {

using testing::example_offline_trace;
using testing::example_placement;
using testing::example_power;

struct Scenario {
  placement::PlacementMap placement;
  trace::Trace trace;
  disk::DiskPowerParams power;
};

Scenario medium_scenario(std::uint64_t seed) {
  placement::ZipfPlacementConfig pcfg;
  pcfg.num_disks = 20;
  pcfg.num_data = 400;
  pcfg.replication_factor = 3;
  pcfg.seed = seed;

  trace::SyntheticTraceConfig tcfg;
  tcfg.num_requests = 2000;
  tcfg.num_data = 400;
  tcfg.mean_rate = 8.0;
  tcfg.seed = seed;

  disk::DiskPowerParams power;  // production Barracuda model
  return Scenario{placement::make_zipf_placement(pcfg),
                  trace::make_synthetic_trace(tcfg), power};
}

double energy_of(const Scenario& s, const OfflineAssignment& a) {
  return evaluate_offline(s.trace, a, s.placement.num_disks(), s.power)
      .total_energy();
}

TEST(MwisSeeds, AllSeedModesProduceValidAssignments) {
  const auto s = medium_scenario(3);
  for (auto seed : {MwisOptions::Seed::kSolverOnly,
                    MwisOptions::Seed::kPileOnly, MwisOptions::Seed::kBest}) {
    MwisOptions opts;
    opts.seed = seed;
    opts.graph.successor_horizon = 2;
    MwisOfflineScheduler sched(opts);
    const auto a = sched.schedule(s.trace, s.placement, s.power);
    a.validate(s.trace, s.placement);  // throws on violation
  }
}

TEST(MwisSeeds, BestIsNoWorseThanEitherSeedAlone) {
  const auto s = medium_scenario(7);
  auto run = [&](MwisOptions::Seed seed) {
    MwisOptions opts;
    opts.seed = seed;
    opts.graph.successor_horizon = 2;
    opts.refine_passes = 3;
    MwisOfflineScheduler sched(opts);
    return energy_of(s, sched.schedule(s.trace, s.placement, s.power));
  };
  const double best = run(MwisOptions::Seed::kBest);
  EXPECT_LE(best, run(MwisOptions::Seed::kSolverOnly) + 1e-6);
  EXPECT_LE(best, run(MwisOptions::Seed::kPileOnly) + 1e-6);
}

TEST(MwisSeeds, DiagnosticsReportWinningSeed) {
  const auto s = medium_scenario(11);
  MwisOptions opts;
  opts.seed = MwisOptions::Seed::kPileOnly;
  MwisOfflineScheduler pile_only(opts);
  pile_only.schedule(s.trace, s.placement, s.power);
  EXPECT_TRUE(pile_only.last_used_pile_seed());

  opts.seed = MwisOptions::Seed::kSolverOnly;
  opts.graph.successor_horizon = 2;
  MwisOfflineScheduler solver_only(opts);
  solver_only.schedule(s.trace, s.placement, s.power);
  EXPECT_FALSE(solver_only.last_used_pile_seed());
  EXPECT_GT(solver_only.last_graph_nodes(), 0u);
  EXPECT_GT(solver_only.last_selected_count(), 0u);
  EXPECT_GT(solver_only.last_selected_saving(), 0.0);
}

TEST(MwisSeeds, PileOnlySkipsGraphConstruction) {
  const auto s = medium_scenario(13);
  MwisOptions opts;
  opts.seed = MwisOptions::Seed::kPileOnly;
  MwisOfflineScheduler sched(opts);
  sched.schedule(s.trace, s.placement, s.power);
  EXPECT_EQ(sched.last_graph_nodes(), 0u);
  EXPECT_EQ(sched.last_graph_edges(), 0u);
}

TEST(MwisSeeds, RefinementOnlyHelps) {
  const auto s = medium_scenario(17);
  auto run = [&](std::size_t passes) {
    MwisOptions opts;
    opts.graph.successor_horizon = 2;
    opts.refine_passes = passes;
    MwisOfflineScheduler sched(opts);
    return energy_of(s, sched.schedule(s.trace, s.placement, s.power));
  };
  const double raw = run(0);
  const double refined = run(4);
  EXPECT_LE(refined, raw + 1e-6);
}

TEST(MwisSeeds, PaperExampleSeedModeOutcomes) {
  // On the §2.3 instance the solver seed (exact MWIS) reaches the global
  // optimum (19 J). The pile greedy lands on schedule B (23 J) — a local
  // optimum refinement cannot leave — which is precisely why kBest keeps
  // the solver seed here.
  auto run = [&](MwisOptions::Seed seed) {
    MwisOptions opts;
    opts.seed = seed;
    opts.algorithm = MwisOptions::Algorithm::kExact;
    opts.graph.successor_horizon = 2;
    MwisOfflineScheduler sched(opts);
    const auto a = sched.schedule(example_offline_trace(), example_placement(),
                                  example_power());
    return evaluate_offline(example_offline_trace(), a, 4, example_power())
        .total_energy();
  };
  EXPECT_DOUBLE_EQ(run(MwisOptions::Seed::kSolverOnly), 19.0);
  EXPECT_DOUBLE_EQ(run(MwisOptions::Seed::kPileOnly), 23.0);
  EXPECT_DOUBLE_EQ(run(MwisOptions::Seed::kBest), 19.0);
}

}  // namespace
}  // namespace eas::core
