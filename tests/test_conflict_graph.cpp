// Tests for conflict-graph construction and the scalable GWMIN solver,
// cross-validated against the explicit-graph reference algorithms.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/conflict_graph.hpp"
#include "core/energy_model.hpp"
#include "graph/mwis.hpp"
#include "paper_example.hpp"
#include "placement/placement.hpp"
#include "trace/synthetic.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace eas::core {
namespace {

using testing::example_offline_trace;
using testing::example_placement;
using testing::example_power;

ConflictGraph paper_graph(std::size_t horizon = 2) {
  ConflictGraphOptions opts;
  opts.successor_horizon = horizon;
  return build_conflict_graph(example_offline_trace(), example_placement(),
                              example_power(), opts);
}

TEST(ConflictGraph, AdjacencyIsSymmetricAndLoopFree) {
  const auto g = paper_graph();
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    for (std::uint32_t u : g.neighbors(v)) {
      EXPECT_NE(u, v);
      const auto back = g.neighbors(u);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end());
    }
  }
}

TEST(ConflictGraph, NoDuplicateNeighbors) {
  const auto g = paper_graph();
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    const auto nbrs = g.neighbors(v);
    const std::set<std::uint32_t> unique(nbrs.begin(), nbrs.end());
    EXPECT_EQ(unique.size(), nbrs.size());
  }
}

TEST(ConflictGraph, EdgesMatchTheTwoConstraints) {
  const auto g = paper_graph();
  // Brute-force ground truth: edge iff (share a request) and (same first
  // request or different disk).
  auto conflicts = [](const SavingNode& a, const SavingNode& b) {
    const bool share = a.i == b.i || a.i == b.j || a.j == b.i || a.j == b.j;
    if (!share) return false;
    return a.i == b.i || a.k != b.k;
  };
  for (std::uint32_t u = 0; u < g.size(); ++u) {
    for (std::uint32_t v = u + 1; v < g.size(); ++v) {
      const auto nbrs = g.neighbors(u);
      const bool has =
          std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
      EXPECT_EQ(has, conflicts(g.nodes[u], g.nodes[v]))
          << "nodes " << u << "," << v;
    }
  }
}

TEST(ConflictGraph, HorizonOneKeepsOnlyAdjacentPairs) {
  const auto g = paper_graph(1);
  // X(1,3,1) is the only non-adjacent pair in the paper instance.
  for (const auto& n : g.nodes) {
    EXPECT_FALSE(n.i == 0 && n.j == 2 && n.k == 0);
  }
  EXPECT_EQ(g.size(), 5u);
}

TEST(ConflictGraph, NodesRespectTheSavingWindow) {
  const auto g = paper_graph(5);
  const auto trace = example_offline_trace();
  for (const auto& n : g.nodes) {
    EXPECT_LT(trace[n.j].time - trace[n.i].time,
              example_power().saving_window_seconds());
    EXPECT_GT(n.weight, 0.0);
    EXPECT_TRUE(example_placement().stores(trace[n.i].data, n.k));
    EXPECT_TRUE(example_placement().stores(trace[n.j].data, n.k));
  }
}

TEST(ConflictGraph, SelectionWeightVerifiesIndependence) {
  const auto g = paper_graph();
  // Find two adjacent nodes and try to "select" both.
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    if (g.degree(v) > 0) {
      const std::uint32_t u = g.neighbors(v)[0];
      EXPECT_THROW(g.selection_weight({v, u}), InvariantError);
      return;
    }
  }
  FAIL() << "paper graph should contain at least one edge";
}

TEST(ConflictGraph, ToWeightedGraphRoundTrips) {
  const auto g = paper_graph();
  const auto wg = g.to_weighted_graph();
  EXPECT_EQ(wg.size(), g.size());
  EXPECT_EQ(wg.num_edges(), g.num_edges());
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    EXPECT_DOUBLE_EQ(wg.weight(v), g.nodes[v].weight);
    EXPECT_EQ(wg.degree(v), g.degree(v));
  }
}

TEST(SolveGwmin, MatchesExplicitReferenceOnThePaperInstance) {
  const auto g = paper_graph();
  const auto fast = solve_gwmin(g, false);
  EXPECT_NO_THROW(g.selection_weight(fast));
  // Both implementations satisfy the same GWMIN lower bound.
  double bound = 0.0;
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    bound += g.nodes[v].weight / static_cast<double>(g.degree(v) + 1);
  }
  EXPECT_GE(g.selection_weight(fast), bound - 1e-9);
}

class RandomConflictGraphTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConflictGraphTest, GwminIsIndependentMaximalAndBounded) {
  util::Rng rng(GetParam());
  // Random small instance: 40 requests, 6 disks, rf 2.
  placement::ZipfPlacementConfig pcfg;
  pcfg.num_disks = 6;
  pcfg.num_data = 20;
  pcfg.replication_factor = 2;
  pcfg.seed = GetParam();
  const auto placement = placement::make_zipf_placement(pcfg);

  std::vector<trace::TraceRecord> recs;
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += rng.exponential(0.5);
    recs.push_back({t, static_cast<DataId>(rng.next_below(20)), 4096, true});
  }
  const trace::Trace trace(std::move(recs));

  ConflictGraphOptions opts;
  opts.successor_horizon = 3;
  const auto g =
      build_conflict_graph(trace, placement, example_power(), opts);

  for (const bool gw2 : {false, true}) {
    const auto sel = solve_gwmin(g, gw2);
    const double w = g.selection_weight(sel);  // checks independence

    // Maximality: no alive vertex could be added.
    std::vector<bool> in(g.size(), false);
    for (auto v : sel) in[v] = true;
    for (std::uint32_t v = 0; v < g.size(); ++v) {
      if (in[v]) continue;
      bool blocked = false;
      for (std::uint32_t u : g.neighbors(v)) {
        if (in[u]) blocked = true;
      }
      EXPECT_TRUE(blocked) << "vertex " << v << " could be added";
    }

    // Never better than the exact optimum (checked on small graphs only).
    if (g.size() <= 40) {
      const auto exact = graph::exact_mwis(g.to_weighted_graph(), 40);
      EXPECT_LE(w, exact.total_weight + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConflictGraphTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace eas::core
