// Tests for the position-aware service model and the SPTF queue discipline.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "disk/disk.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace eas::disk {
namespace {

DiskPerfParams positional_perf(QueueDiscipline d = QueueDiscipline::kFcfs) {
  DiskPerfParams p;
  p.use_position_model = true;
  p.discipline = d;
  return p;
}

Request req(RequestId id, DataId data) {
  Request r;
  r.id = id;
  r.data = data;
  r.size_bytes = 4096;
  return r;
}

TEST(SeekModel, ZeroDistanceIsFree) {
  EXPECT_DOUBLE_EQ(DiskPerfParams{}.seek_seconds(0), 0.0);
}

TEST(SeekModel, MonotoneInDistanceUpToFullStroke) {
  const DiskPerfParams p;
  double prev = 0.0;
  for (unsigned d = 1; d <= p.num_cylinders; d *= 2) {
    const double s = p.seek_seconds(d);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_NEAR(p.seek_seconds(p.num_cylinders), p.full_stroke_seek_seconds,
              1e-12);
}

TEST(SeekModel, ShortSeeksDominatedBySettleTime) {
  const DiskPerfParams p;
  EXPECT_LT(p.seek_seconds(1), 2.0 * p.seek_settle_seconds);
}

TEST(CylinderMap, DeterministicInRangeAndSpread) {
  const unsigned n = 50000;
  std::set<unsigned> seen;
  for (DataId d = 0; d < 2000; ++d) {
    const unsigned c = Disk::cylinder_of(d, n);
    EXPECT_LT(c, n);
    EXPECT_EQ(c, Disk::cylinder_of(d, n));  // deterministic
    seen.insert(c);
  }
  // Near-injective over a small sample: a clumped hash would collide a lot.
  EXPECT_GT(seen.size(), 1900u);
}

TEST(PositionModel, HeadMovesToTheServedCylinder) {
  sim::Simulator sim;
  Disk d(0, sim, DiskPowerParams{}, positional_perf(), DiskState::Idle);
  const DataId data = 77;
  d.submit(req(1, data));
  sim.run();
  EXPECT_EQ(d.head_cylinder(), Disk::cylinder_of(data, 50000));
}

TEST(PositionModel, ServiceTimeDependsOnSeekDistance) {
  // Two requests for the same far-away cylinder: the first pays the long
  // seek, the second (same cylinder) only settle+rotation+transfer.
  sim::Simulator sim;
  Disk d(0, sim, DiskPowerParams{}, positional_perf(), DiskState::Idle);
  std::vector<double> service_times;
  d.set_completion_callback([&](const Completion& c) {
    service_times.push_back(c.completion_time - c.service_start);
  });
  const DataId data = 99;
  d.submit(req(1, data));
  d.submit(req(2, data));
  sim.run();
  ASSERT_EQ(service_times.size(), 2u);
  EXPECT_GE(service_times[0], service_times[1]);
  const auto p = positional_perf();
  EXPECT_NEAR(service_times[1],
              p.controller_overhead_seconds +
                  p.avg_rotational_latency_seconds() +
                  4096.0 / (p.transfer_mb_per_sec * 1e6),
              1e-9);
}

TEST(Sptf, ServesTheNearestCylinderFirst) {
  sim::Simulator sim;
  Disk d(0, sim, DiskPowerParams{}, positional_perf(QueueDiscipline::kSptf),
         DiskState::Idle);
  std::vector<RequestId> order;
  d.set_completion_callback(
      [&](const Completion& c) { order.push_back(c.request.id); });

  // Find three data ids at increasing distance from the initial head
  // position (mid-stroke).
  const unsigned head = d.head_cylinder();
  auto dist = [&](DataId data) {
    const unsigned c = Disk::cylinder_of(data, 50000);
    return c > head ? c - head : head - c;
  };
  std::vector<DataId> candidates(3000);
  for (DataId i = 0; i < candidates.size(); ++i) candidates[i] = i;
  std::sort(candidates.begin(), candidates.end(),
            [&](DataId a, DataId b) { return dist(a) < dist(b); });
  const DataId near = candidates[0];
  const DataId mid = candidates[1500];
  const DataId far = candidates[2999];

  // Submit far, near, mid while the disk is busy with an unrelated request
  // so all three sit in the queue together.
  d.submit(req(0, mid));  // starts service immediately
  d.submit(req(1, far));
  d.submit(req(2, near));
  d.submit(req(3, mid));
  sim.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0u);
  // After serving `mid`, the head is at mid's cylinder: request 3 (same
  // cylinder) is nearest, then near-vs-far relative to that position; the
  // far request must come last.
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[3], 1u);
}

TEST(Sptf, ReducesMeanServiceTimeUnderBacklog) {
  auto run = [&](QueueDiscipline disc) {
    sim::Simulator sim;
    Disk d(0, sim, DiskPowerParams{}, positional_perf(disc), DiskState::Idle);
    double total_busy = 0.0;
    std::size_t served = 0;
    d.set_completion_callback([&](const Completion& c) {
      total_busy += c.completion_time - c.service_start;
      ++served;
    });
    util::Rng rng(7);
    for (RequestId i = 0; i < 200; ++i) {
      d.submit(req(i, static_cast<DataId>(rng.next_below(100000))));
    }
    sim.run();
    EXPECT_EQ(served, 200u);
    return total_busy / static_cast<double>(served);
  };
  const double fcfs = run(QueueDiscipline::kFcfs);
  const double sptf = run(QueueDiscipline::kSptf);
  EXPECT_LT(sptf, fcfs * 0.9);  // classic SPTF seek-time win
}

TEST(Sptf, EveryRequestIsStillServed) {
  // No starvation in a finite burst: all ids complete exactly once.
  sim::Simulator sim;
  Disk d(0, sim, DiskPowerParams{}, positional_perf(QueueDiscipline::kSptf),
         DiskState::Idle);
  std::set<RequestId> done;
  d.set_completion_callback(
      [&](const Completion& c) { done.insert(c.request.id); });
  util::Rng rng(3);
  for (RequestId i = 0; i < 100; ++i) {
    d.submit(req(i, static_cast<DataId>(rng.next_below(100000))));
  }
  sim.run();
  EXPECT_EQ(done.size(), 100u);
}

TEST(PositionModel, DefaultAverageModelIsUnchanged) {
  // The calibrated experiments rely on the average-seek path: identical
  // service time for every 4 KB request regardless of data id.
  sim::Simulator sim;
  DiskPerfParams p;  // use_position_model = false
  Disk d(0, sim, DiskPowerParams{}, p, DiskState::Idle);
  std::vector<double> service_times;
  d.set_completion_callback([&](const Completion& c) {
    service_times.push_back(c.completion_time - c.service_start);
  });
  d.submit(req(1, 5));
  d.submit(req(2, 49999));
  sim.run();
  ASSERT_EQ(service_times.size(), 2u);
  EXPECT_DOUBLE_EQ(service_times[0], service_times[1]);
  EXPECT_DOUBLE_EQ(service_times[0], p.service_seconds(4096));
}

}  // namespace
}  // namespace eas::disk
