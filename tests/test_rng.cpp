// Unit and statistical tests for the RNG and its distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace eas::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), InvariantError);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(bound)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialHasConfiguredMean) {
  Rng rng(17);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialIsMemorylessInCv) {
  // Exponential CV = 1; a gross deviation means a broken sampler.
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(1.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

TEST(Rng, ParetoRespectsScaleAndHasHeavyTail) {
  Rng rng(23);
  const double xm = 2.0, alpha = 1.5;
  int above_10x = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(xm, alpha);
    EXPECT_GE(x, xm);
    if (x > 10.0 * xm) ++above_10x;
  }
  // P(X > 10 xm) = 10^-alpha ~ 3.2%.
  EXPECT_NEAR(above_10x / static_cast<double>(n), std::pow(10.0, -alpha),
              0.01);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(29);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(37);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), InvariantError);
  EXPECT_THROW(rng.weighted_index({1.0, -0.5}), InvariantError);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitStreamsAreUncorrelatedWithParent) {
  Rng parent(43);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace eas::util
