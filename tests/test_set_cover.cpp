// Tests for greedy and exact weighted set cover, including randomized
// cross-validation between the two solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/set_cover.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace eas::graph {
namespace {

SetCoverInstance simple_instance() {
  SetCoverInstance inst;
  inst.num_elements = 4;
  inst.sets = {
      {1.0, {0, 1}},
      {1.0, {2, 3}},
      {2.5, {0, 1, 2, 3}},
      {0.4, {1}},
  };
  return inst;
}

TEST(SetCoverInstance, ValidateCatchesBadInput) {
  SetCoverInstance inst;
  inst.num_elements = 2;
  inst.sets = {{1.0, {0, 2}}};
  EXPECT_THROW(inst.validate(), InvariantError);
  inst.sets = {{-1.0, {0}}};
  EXPECT_THROW(inst.validate(), InvariantError);
}

TEST(SetCoverInstance, FeasibilityDetection) {
  auto inst = simple_instance();
  EXPECT_TRUE(inst.feasible());
  inst.num_elements = 5;  // element 4 uncovered
  EXPECT_FALSE(inst.feasible());
}

TEST(GreedySetCover, CoversEverythingAtReasonableCost) {
  const auto inst = simple_instance();
  const auto sol = greedy_weighted_set_cover(inst);
  EXPECT_TRUE(sol.covers(inst));
  // Optimal is {set0, set1} at 2.0; greedy must not exceed H_4 * OPT.
  EXPECT_LE(sol.total_weight, 2.0 * (1.0 + 0.5 + 1.0 / 3 + 0.25) + 1e-9);
}

TEST(GreedySetCover, PrefersCostEffectiveSets) {
  SetCoverInstance inst;
  inst.num_elements = 3;
  inst.sets = {
      {3.0, {0, 1, 2}},  // ratio 1.0
      {0.5, {0}},        // ratio 0.5
      {0.5, {1}},
      {0.5, {2}},
  };
  const auto sol = greedy_weighted_set_cover(inst);
  EXPECT_TRUE(sol.covers(inst));
  EXPECT_NEAR(sol.total_weight, 1.5, 1e-12);
  EXPECT_EQ(sol.chosen_sets.size(), 3u);
}

TEST(GreedySetCover, ZeroWeightSetsAreFree) {
  SetCoverInstance inst;
  inst.num_elements = 3;
  inst.sets = {
      {0.0, {0, 1}},
      {5.0, {0, 1, 2}},
      {1.0, {2}},
  };
  const auto sol = greedy_weighted_set_cover(inst);
  EXPECT_TRUE(sol.covers(inst));
  EXPECT_NEAR(sol.total_weight, 1.0, 1e-12);
}

TEST(GreedySetCover, ThrowsOnInfeasible) {
  SetCoverInstance inst;
  inst.num_elements = 2;
  inst.sets = {{1.0, {0}}};
  EXPECT_THROW(greedy_weighted_set_cover(inst), InvariantError);
}

TEST(GreedySetCover, HandlesDuplicateElementsWithinASet) {
  SetCoverInstance inst;
  inst.num_elements = 2;
  inst.sets = {{1.0, {0, 0, 1}}};
  const auto sol = greedy_weighted_set_cover(inst);
  EXPECT_TRUE(sol.covers(inst));
  EXPECT_EQ(sol.chosen_sets.size(), 1u);
}

TEST(ExactSetCover, FindsTheOptimum) {
  const auto sol = exact_set_cover(simple_instance());
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->total_weight, 2.0, 1e-12);
}

TEST(ExactSetCover, ReturnsNulloptOnInfeasible) {
  SetCoverInstance inst;
  inst.num_elements = 3;
  inst.sets = {{1.0, {0, 1}}};
  EXPECT_FALSE(exact_set_cover(inst).has_value());
}

TEST(ExactSetCover, RefusesOversizedInstances) {
  SetCoverInstance inst;
  inst.num_elements = 100;
  EXPECT_THROW(exact_set_cover(inst, 24), InvariantError);
}

class RandomSetCoverTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSetCoverTest, GreedyIsFeasibleAndWithinLnNOfExact) {
  util::Rng rng(GetParam());
  SetCoverInstance inst;
  inst.num_elements = 12;
  const int num_sets = 10;
  for (int s = 0; s < num_sets; ++s) {
    SetCoverInstance::Set set;
    set.weight = rng.uniform(0.1, 5.0);
    for (std::size_t e = 0; e < inst.num_elements; ++e) {
      if (rng.bernoulli(0.35)) set.elements.push_back(e);
    }
    inst.sets.push_back(std::move(set));
  }
  // Guarantee feasibility with one expensive universal set.
  SetCoverInstance::Set universal;
  universal.weight = 20.0;
  for (std::size_t e = 0; e < inst.num_elements; ++e) {
    universal.elements.push_back(e);
  }
  inst.sets.push_back(std::move(universal));

  const auto greedy = greedy_weighted_set_cover(inst);
  const auto exact = exact_set_cover(inst);
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(greedy.covers(inst));
  EXPECT_TRUE(exact->covers(inst));
  EXPECT_GE(greedy.total_weight, exact->total_weight - 1e-9);
  // H_12 ~ 3.10: the classic approximation guarantee.
  const double h12 = 3.1032;
  EXPECT_LE(greedy.total_weight, exact->total_weight * h12 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSetCoverTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace eas::graph
