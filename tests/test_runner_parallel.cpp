// The SweepRunner's core contracts: bit-identical results regardless of
// thread count, registry round-trip against hand-built scheduler stacks
// (the former bench run_* free functions), failure propagation and
// cancellation, shared-input caching, and the builder/name-table APIs.
// These tests carry the sweep-smoke ctest label and run under the tsan
// preset.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/mwis_scheduler.hpp"
#include "core/wsc_scheduler.hpp"
#include "power/fixed_threshold.hpp"
#include "runner/sinks.hpp"
#include "runner/sweep.hpp"
#include "util/check.hpp"

namespace eas {
namespace {

// Small enough to keep the suite fast, large enough that the schedulers make
// non-trivial decisions (spin-ups, queueing, batching).
constexpr std::size_t kRequests = 2000;

runner::ExperimentParams small_params(unsigned rf = 3) {
  return runner::ExperimentBuilder(runner::Workload::kCello)
      .requests(kRequests)
      .replication(rf)
      .build();
}

void expect_identical(const storage::RunResult& a, const storage::RunResult& b,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.scheduler_name, b.scheduler_name);
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.horizon, b.horizon);  // bitwise, not approximate
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.requests_waited_spinup, b.requests_waited_spinup);
  EXPECT_EQ(a.total_energy(), b.total_energy());
  EXPECT_EQ(a.total_spin_ups(), b.total_spin_ups());
  EXPECT_EQ(a.total_spin_downs(), b.total_spin_downs());
  EXPECT_EQ(a.response_times.count(), b.response_times.count());
  if (!a.response_times.empty() && !b.response_times.empty()) {
    EXPECT_EQ(a.response_times.mean(), b.response_times.mean());
    EXPECT_EQ(a.response_times.sorted(), b.response_times.sorted());
  }
  ASSERT_EQ(a.disk_stats.size(), b.disk_stats.size());
  for (std::size_t d = 0; d < a.disk_stats.size(); ++d) {
    EXPECT_EQ(a.disk_stats[d].seconds_in_state, b.disk_stats[d].seconds_in_state);
    EXPECT_EQ(a.disk_stats[d].joules_in_state, b.disk_stats[d].joules_in_state);
    EXPECT_EQ(a.disk_stats[d].spin_ups, b.disk_stats[d].spin_ups);
    EXPECT_EQ(a.disk_stats[d].spin_downs, b.disk_stats[d].spin_downs);
    EXPECT_EQ(a.disk_stats[d].requests_served, b.disk_stats[d].requests_served);
  }
}

// --- determinism across thread counts --------------------------------------

TEST(SweepRunnerParallel, BitIdenticalAcrossThreadCounts) {
  const auto base = small_params();
  const std::vector<std::string> schedulers = {"random", "static", "heuristic",
                                               "wsc", "mwis"};
  const auto grid = [&] {
    return runner::product_grid(
        base, schedulers, {"1", "3"},
        [](const runner::ExperimentParams& b, const std::string& tag) {
          return runner::ExperimentBuilder(b)
              .replication(static_cast<unsigned>(std::stoul(tag)))
              .build();
        });
  };

  // Serial reference, straight through run_cell with no pool involved.
  std::vector<storage::RunResult> reference;
  {
    auto cells = grid();
    for (const auto& cell : cells) {
      const auto trace = runner::make_shared_workload(cell.params);
      const auto placement = runner::make_shared_placement(cell.params);
      reference.push_back(run_cell(runner::SchedulerRegistry::global(),
                                   cell.scheduler, cell.params, *trace,
                                   *placement));
    }
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    runner::SweepOptions opts;
    opts.threads = threads;
    const auto results = runner::SweepRunner(opts).run(grid());
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(results[i].status, runner::CellStatus::kOk);
      EXPECT_EQ(results[i].index, i);
      EXPECT_GE(results[i].wall_seconds, 0.0);
      expect_identical(results[i].result, reference[i],
                       results[i].spec.scheduler + "/rf" +
                           results[i].spec.tag + " @" +
                           std::to_string(threads) + " threads");
    }
  }
}

// --- kernel regression golden ----------------------------------------------
//
// End-to-end outputs recorded from the pre-rewrite event kernel (hash-map
// handle registry + std::function callbacks + lazily-cleaned binary heap)
// on this exact cell. The slot-pool/indexed-heap kernel must reproduce them
// bit-for-bit: the rewrite changes the heap's internal layout but not the
// (time, seq) total order, so any drift here is an ordering bug, not noise.
TEST(KernelGolden, SlotPoolKernelMatchesPreRewriteResults) {
  const auto p = small_params();  // cello, 2000 requests, rf=3
  const auto trace = runner::make_shared_workload(p);
  const auto placement = runner::make_shared_placement(p);
  const auto& reg = runner::SchedulerRegistry::global();

  const auto wsc = run_cell(reg, "wsc", p, *trace, *placement);
  EXPECT_EQ(wsc.total_energy(), 130283.2136638177);
  EXPECT_EQ(wsc.total_spin_ups(), 181u);
  EXPECT_EQ(wsc.requests_waited_spinup, 325u);
  EXPECT_EQ(wsc.response_times.mean(), 1.5632743452818472);

  const auto heuristic = run_cell(reg, "heuristic", p, *trace, *placement);
  EXPECT_EQ(heuristic.total_energy(), 131751.42789423512);
  EXPECT_EQ(heuristic.total_spin_ups(), 181u);
  EXPECT_EQ(heuristic.requests_waited_spinup, 301u);
  EXPECT_EQ(heuristic.response_times.mean(), 1.3938358852147847);
}

TEST(SweepRunnerParallel, SharedInputsAreCachedAcrossCells) {
  const auto base = small_params();
  auto cells = runner::product_grid(base, {"static", "random"}, {"x"}, nullptr);
  runner::SweepOptions opts;
  opts.threads = 2;
  const auto results = runner::SweepRunner(opts).run(std::move(cells));
  ASSERT_EQ(results.size(), 2u);
  // Same workload/seed/requests and same placement key ⇒ literally the same
  // immutable objects, not copies.
  EXPECT_EQ(results[0].spec.trace.get(), results[1].spec.trace.get());
  EXPECT_EQ(results[0].spec.placement.get(), results[1].spec.placement.get());
  EXPECT_NE(results[0].spec.trace.get(), nullptr);
}

// --- registry round-trip against the former run_* free functions -----------

TEST(SchedulerRegistry, MatchesHandBuiltSchedulerStacks) {
  const auto p = small_params(2);
  const auto trace =
      runner::make_workload(p.workload, p.trace_seed, p.num_requests);
  const auto placement = runner::make_placement(p);
  const auto config = runner::system_config_for(p);
  const auto& reg = runner::SchedulerRegistry::global();

  expect_identical(run_cell(reg, "always-on", p, trace, placement),
                   storage::run_always_on(config, placement, trace),
                   "always-on");
  {
    core::RandomScheduler sched(p.trace_seed ^ 0x5eedULL);
    power::FixedThresholdPolicy policy;
    expect_identical(run_cell(reg, "random", p, trace, placement),
                     storage::run_online(config, placement, trace, sched,
                                         policy),
                     "random");
  }
  {
    core::StaticScheduler sched;
    power::FixedThresholdPolicy policy;
    expect_identical(run_cell(reg, "static", p, trace, placement),
                     storage::run_online(config, placement, trace, sched,
                                         policy),
                     "static");
  }
  {
    core::CostFunctionScheduler sched(p.cost);
    power::FixedThresholdPolicy policy;
    expect_identical(run_cell(reg, "heuristic", p, trace, placement),
                     storage::run_online(config, placement, trace, sched,
                                         policy),
                     "heuristic");
  }
  {
    core::WscBatchScheduler sched(p.batch_interval, p.cost);
    power::FixedThresholdPolicy policy;
    expect_identical(run_cell(reg, "wsc", p, trace, placement),
                     storage::run_batch(config, placement, trace, sched,
                                        policy),
                     "wsc");
  }
  {
    core::MwisOptions opts;
    opts.algorithm = core::MwisOptions::Algorithm::kGwmin;
    opts.graph.successor_horizon = p.mwis_horizon;
    opts.refine_passes = p.mwis_refine_passes;
    core::MwisOfflineScheduler sched(opts);
    const auto assignment = sched.schedule(trace, placement, config.power);
    expect_identical(run_cell(reg, "mwis", p, trace, placement),
                     storage::run_offline(config, placement, trace, assignment,
                                          sched.name()),
                     "mwis");
  }
}

TEST(SchedulerRegistry, RosterOrderAndLookup) {
  const auto& reg = runner::SchedulerRegistry::global();
  const std::vector<std::string> expected = {"always-on", "random", "static",
                                             "heuristic", "wsc", "mwis"};
  EXPECT_EQ(reg.names(), expected);
  EXPECT_TRUE(reg.contains("wsc"));
  EXPECT_FALSE(reg.contains("nonsense"));
  EXPECT_THROW(reg.at("nonsense"), InvariantError);
}

TEST(SchedulerRegistry, RejectsDuplicateAndMalformedSpecs) {
  auto reg = runner::SchedulerRegistry::paper_roster();
  runner::SchedulerSpec dup;
  dup.name = "static";
  dup.make = [](const runner::ExperimentParams&,
                const placement::PlacementMap&) {
    return runner::SchedulerBundle{};
  };
  EXPECT_THROW(reg.add(dup), InvariantError);
  runner::SchedulerSpec unnamed = dup;
  unnamed.name.clear();
  EXPECT_THROW(reg.add(unnamed), InvariantError);
  runner::SchedulerSpec no_factory;
  no_factory.name = "hollow";
  EXPECT_THROW(reg.add(no_factory), InvariantError);
}

TEST(SchedulerRegistry, AcceptsBenchLocalExtensions) {
  auto reg = runner::SchedulerRegistry::paper_roster();
  runner::SchedulerSpec eager;
  eager.name = "heuristic-eager";
  eager.model = runner::ExecutionModel::kOnline;
  eager.make = [](const runner::ExperimentParams& p,
                  const placement::PlacementMap&) {
    runner::SchedulerBundle b;
    b.online = std::make_unique<core::CostFunctionScheduler>(p.cost);
    b.policy = std::make_unique<power::FixedThresholdPolicy>(1.0);
    return b;
  };
  reg.add(std::move(eager));
  EXPECT_EQ(reg.size(), 7u);

  const auto p = runner::ExperimentBuilder(runner::Workload::kCello)
                     .requests(300)
                     .disks(12)
                     .replication(2)
                     .build();
  const auto trace =
      runner::make_workload(p.workload, p.trace_seed, p.num_requests);
  const auto placement = runner::make_placement(p);
  const auto r = run_cell(reg, "heuristic-eager", p, trace, placement);
  EXPECT_EQ(r.total_requests, p.num_requests);
}

// --- failure propagation and cancellation -----------------------------------

std::vector<runner::CellSpec> failing_grid(std::size_t n,
                                           std::size_t failing_index) {
  const auto p = runner::ExperimentBuilder(runner::Workload::kCello)
                     .requests(10)
                     .disks(4)
                     .replication(1)
                     .build();
  std::vector<runner::CellSpec> cells;
  for (std::size_t i = 0; i < n; ++i) {
    runner::CellSpec cell;
    cell.params = p;
    cell.tag = std::to_string(i);
    if (i == failing_index) {
      cell.run = [](const runner::ExperimentParams&, const trace::Trace&,
                    const placement::PlacementMap&) -> storage::RunResult {
        throw std::runtime_error("cell exploded");
      };
    } else {
      cell.run = [](const runner::ExperimentParams& cp, const trace::Trace&,
                    const placement::PlacementMap&) {
        storage::RunResult r;
        r.scheduler_name = "stub";
        r.total_requests = cp.num_requests;
        return r;
      };
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

TEST(SweepRunnerFailure, FirstFailureCancelsRemainingCells) {
  runner::SweepOptions opts;
  opts.threads = 1;  // deterministic ordering: cell 0 fails before 1..3 start
  opts.rethrow_failure = false;
  const auto results = runner::SweepRunner(opts).run(failing_grid(4, 0));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status, runner::CellStatus::kFailed);
  EXPECT_NE(results[0].error.find("cell exploded"), std::string::npos);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status, runner::CellStatus::kSkipped);
  }
}

TEST(SweepRunnerFailure, RethrowsFirstFailureByDefault) {
  runner::SweepOptions opts;
  opts.threads = 2;
  EXPECT_THROW(runner::SweepRunner(opts).run(failing_grid(3, 1)),
               std::runtime_error);
}

TEST(SweepRunnerFailure, CancelOffRunsEveryCell) {
  runner::SweepOptions opts;
  opts.threads = 1;
  opts.cancel_on_failure = false;
  opts.rethrow_failure = false;
  const auto results = runner::SweepRunner(opts).run(failing_grid(4, 0));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status, runner::CellStatus::kFailed);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status, runner::CellStatus::kOk);
    EXPECT_EQ(results[i].result.total_requests, 10u);
  }
}

TEST(SweepRunnerFailure, MisdeclaredGridFailsBeforeRunning) {
  auto cells = failing_grid(2, 99);  // no failing run hooks...
  cells[1].run = nullptr;
  cells[1].scheduler = "no-such-scheduler";  // ...but an unknown registry row
  runner::SweepOptions opts;
  opts.threads = 1;
  EXPECT_THROW(runner::SweepRunner(opts).run(std::move(cells)),
               InvariantError);
}

TEST(SweepRunner, EmptyGridIsANoOp) {
  EXPECT_TRUE(runner::SweepRunner().run({}).empty());
}

// --- find_cell / builder / name-table edges ---------------------------------

TEST(SweepRunner, FindCellThrowsOnUnknownKey) {
  runner::SweepOptions opts;
  opts.threads = 1;
  opts.rethrow_failure = false;
  const auto results = runner::SweepRunner(opts).run(failing_grid(2, 99));
  EXPECT_EQ(&runner::find_cell(results, "1", "").spec.tag, &results[1].spec.tag);
  EXPECT_THROW(runner::find_cell(results, "7", ""), InvariantError);
}

TEST(ExperimentBuilder, ValidatesOnBuild) {
  EXPECT_THROW(runner::ExperimentBuilder().requests(0).build(),
               InvariantError);
  EXPECT_THROW(runner::ExperimentBuilder().replication(0).build(),
               InvariantError);
  EXPECT_THROW(
      runner::ExperimentBuilder().disks(4).replication(5).build(),
      InvariantError);
  EXPECT_THROW(runner::ExperimentBuilder().zipf_z(1.5).build(),
               InvariantError);
  EXPECT_THROW(runner::ExperimentBuilder().batch_interval(0.0).build(),
               InvariantError);
  EXPECT_THROW(runner::ExperimentBuilder().alpha(-0.1).build(),
               InvariantError);
  EXPECT_THROW(runner::ExperimentBuilder().mwis(0, 1).build(),
               InvariantError);
  const auto p = runner::ExperimentBuilder(runner::Workload::kFinancial)
                     .replication(5)
                     .zipf_z(0.0)
                     .build();
  EXPECT_EQ(p.workload, runner::Workload::kFinancial);
  EXPECT_EQ(p.replication_factor, 5u);
}

// --- merged metrics determinism ---------------------------------------------
//
// Each cell owns a thread-confined MetricRegistry; merged_metrics folds them
// in cell-index order after the sweep. The combined JSON must therefore be
// bit-identical no matter how many workers executed the grid.
TEST(SweepRunnerParallel, MergedMetricsAreIdenticalAcrossThreadCounts) {
  const auto base = runner::ExperimentBuilder(runner::Workload::kCello)
                        .requests(kRequests)
                        .metrics()
                        .build();
  const auto grid = [&] {
    return runner::product_grid(
        base, {"static", "heuristic", "wsc"}, {"1", "3"},
        [](const runner::ExperimentParams& b, const std::string& tag) {
          return runner::ExperimentBuilder(b)
              .replication(static_cast<unsigned>(std::stoul(tag)))
              .build();
        });
  };

  std::string reference;
  for (std::size_t threads : {1u, 2u, 8u}) {
    runner::SweepOptions opts;
    opts.threads = threads;
    const auto results = runner::SweepRunner(opts).run(grid());
    for (const auto& cell : results) {
      ASSERT_EQ(cell.status, runner::CellStatus::kOk);
      ASSERT_NE(cell.result.metrics, nullptr);
      EXPECT_EQ(cell.result.trace_recorder, nullptr);  // tracing not requested
    }
    const std::string json = runner::merged_metrics(results).to_json();
    if (reference.empty()) {
      reference = json;
      // The fold saw every cell: six cells of kRequests completions each.
      std::ostringstream expect_completed;
      expect_completed << "\"requests_completed\":{\"kind\":\"counter\","
                       << "\"value\":" << 6 * kRequests << "}";
      EXPECT_NE(json.find(expect_completed.str()), std::string::npos) << json;
    } else {
      EXPECT_EQ(json, reference) << threads << " threads";
    }
  }
}

TEST(ExperimentBuilderObs, CrossChecksSinkAgainstObsConfig) {
  // A sink that asks for artifacts the run won't produce is a build error...
  runner::SinkConfig wants_trace;
  wants_trace.with_trace = true;
  EXPECT_THROW(runner::ExperimentBuilder().sink(wants_trace).build(),
               InvariantError);
  runner::SinkConfig wants_metrics;
  wants_metrics.with_metrics = true;
  EXPECT_THROW(runner::ExperimentBuilder().sink(wants_metrics).build(),
               InvariantError);
  // ...and enabling the matching producers makes the same config valid.
  const auto p = runner::ExperimentBuilder()
                     .trace({.capacity = 1u << 10})
                     .metrics()
                     .sink(wants_trace)
                     .build();
  EXPECT_TRUE(p.obs.trace.enabled);
  EXPECT_TRUE(p.obs.metrics);
  EXPECT_TRUE(p.sink.with_trace);
}

TEST(WorkloadNames, RoundTripThroughTheCanonicalTable) {
  for (const auto w : runner::kAllWorkloads) {
    const auto back = runner::workload_from_string(runner::to_string(w));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, w);
  }
  EXPECT_FALSE(runner::workload_from_string("tpc-c").has_value());
}

TEST(ThreadsFromEnv, ParsesAndClampsEAS_THREADS) {
  ::setenv("EAS_THREADS", "3", 1);
  EXPECT_EQ(runner::threads_from_env(), 3u);
  ::setenv("EAS_THREADS", "0", 1);
  EXPECT_GE(runner::threads_from_env(), 1u);
  // strtoull would wrap "-3" to 2^64-3; signs must fall back to the default.
  ::setenv("EAS_THREADS", "-3", 1);
  EXPECT_LE(runner::threads_from_env(), 1024u);
  ::setenv("EAS_THREADS", "garbage", 1);
  EXPECT_GE(runner::threads_from_env(), 1u);
  ::unsetenv("EAS_THREADS");
  EXPECT_GE(runner::threads_from_env(), 1u);
}

}  // namespace
}  // namespace eas
