// Tests for summary statistics, sample stores and the log histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace eas::stats {
namespace {

TEST(SummaryStats, EmptyIsAllZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(SummaryStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  SummaryStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  double var = 0.0;
  for (double x : xs) var += (x - 6.2) * (x - 6.2);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(SummaryStats, MergeEqualsSequentialFeed) {
  util::Rng rng(5);
  SummaryStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(SummaryStats, MergeWithEmptyIsIdentity) {
  SummaryStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  SummaryStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(SummaryStats, NumericallyStableOnLargeOffsets) {
  SummaryStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.2502, 0.01);
}

TEST(SampleStore, QuantilesInterpolate) {
  SampleStore s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 2.0);
}

TEST(SampleStore, QuantileOfSingleSample) {
  SampleStore s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.p99(), 7.0);
}

TEST(SampleStore, QuantileOnEmptyThrows) {
  SampleStore s;
  EXPECT_THROW(s.quantile(0.5), InvariantError);
}

TEST(SampleStore, FractionAboveIsExclusive) {
  SampleStore s;
  for (double x : {1.0, 2.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.fraction_above(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_above(2.0), 0.25);  // strictly greater
  EXPECT_DOUBLE_EQ(s.fraction_above(3.0), 0.0);
  SampleStore empty;
  EXPECT_DOUBLE_EQ(empty.fraction_above(1.0), 0.0);
}

TEST(SampleStore, SortedIsAscendingAndStableAcrossCalls) {
  SampleStore s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  const auto& first = s.sorted();
  EXPECT_EQ(first, (std::vector<double>{1.0, 2.0, 3.0}));
  s.add(0.5);
  EXPECT_EQ(s.sorted().front(), 0.5);
}

TEST(SampleStore, MeanMatchesSum) {
  SampleStore s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Histogram, CountsLandInTheRightBins) {
  Histogram h(0.001, 100.0, 10);
  h.add(0.005);
  h.add(50.0);
  EXPECT_EQ(h.total_count(), 2u);
  // Find the two non-empty bins and verify their ranges.
  int nonempty = 0;
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    if (h.bin_count(b) == 0) continue;
    ++nonempty;
    const double lo = h.bin_lower(b);
    const double hi = h.bin_upper(b);
    EXPECT_TRUE((lo <= 0.005 && 0.005 < hi) || (lo <= 50.0 && 50.0 < hi));
  }
  EXPECT_EQ(nonempty, 2);
}

TEST(Histogram, ClampsOutOfRangeInsteadOfDropping) {
  Histogram h(0.01, 1.0, 5);
  h.add(1e-9);
  h.add(1e9);
  h.add(0.0);
  h.add(-5.0);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_GE(h.bin_count(0), 3u);
  EXPECT_EQ(h.bin_count(h.num_bins() - 1), 1u);
}

TEST(Histogram, QuantileEstimateIsInTheRightDecade) {
  Histogram h(1e-4, 1e2, 10);
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0.9, 1.1));
  const double q = h.quantile_estimate(0.5);
  EXPECT_GT(q, 0.5);
  EXPECT_LT(q, 2.0);
}

TEST(Histogram, GeometricMidpointBetweenEdges) {
  Histogram h(1.0, 100.0, 1);
  EXPECT_NEAR(h.bin_mid(0), std::sqrt(h.bin_lower(0) * h.bin_upper(0)), 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0), InvariantError);
  EXPECT_THROW(Histogram(2.0, 1.0), InvariantError);
  EXPECT_THROW(Histogram(1.0, 10.0, 0), InvariantError);
}

TEST(Histogram, EmptyQuantileThrows) {
  Histogram h(0.01, 1.0);
  EXPECT_THROW(h.quantile_estimate(0.5), InvariantError);
}

// --- shard merging (operator+=) ---------------------------------------------
//
// The metric registry folds per-cell shards with `total += shard` in a fixed
// order; these pins keep that fold equivalent to having streamed every
// sample into one accumulator.

TEST(ShardMerge, SummaryStatsFoldMatchesSingleStream) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.5, 9.0, 2.5, 6.0};
  SummaryStats whole;
  for (double x : xs) whole.add(x);

  SummaryStats left, right, folded;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? left : right).add(xs[i]);
  }
  folded += left;
  folded += right;
  EXPECT_EQ(folded.count(), whole.count());
  EXPECT_DOUBLE_EQ(folded.mean(), whole.mean());
  EXPECT_DOUBLE_EQ(folded.min(), whole.min());
  EXPECT_DOUBLE_EQ(folded.max(), whole.max());
  EXPECT_NEAR(folded.variance(), whole.variance(), 1e-12);

  // Folding an empty shard (a cell that saw no samples) is a no-op.
  folded += SummaryStats{};
  EXPECT_EQ(folded.count(), whole.count());
  EXPECT_DOUBLE_EQ(folded.mean(), whole.mean());
}

TEST(ShardMerge, SampleStoreAppendsInInsertionOrder) {
  SampleStore a, b;
  a.add(3.0);
  a.add(1.0);
  b.add(2.0);
  b.add(0.5);
  a += b;
  ASSERT_EQ(a.count(), 4u);
  // Insertion order is preserved (mean sums in that order, so a fixed merge
  // order gives a bit-reproducible mean)...
  EXPECT_DOUBLE_EQ(a.mean(), (3.0 + 1.0 + 2.0 + 0.5) / 4.0);
  // ...and the sort cache is rebuilt, not stale.
  const auto& sorted = a.sorted();
  EXPECT_EQ(sorted, (std::vector<double>{0.5, 1.0, 2.0, 3.0}));
}

TEST(ShardMerge, SampleStoreMergeAfterSortedQueryStaysCorrect) {
  SampleStore a, b;
  a.add(2.0);
  EXPECT_DOUBLE_EQ(a.median(), 2.0);  // materializes the sort cache
  b.add(1.0);
  a += b;
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.median(), 1.5);
}

TEST(ShardMerge, HistogramFoldIsBinWise) {
  Histogram a(1e-3, 10.0, 10);
  Histogram b(1e-3, 10.0, 10);
  a.add(0.01);
  a.add(0.5);
  b.add(0.01, 3);
  a += b;
  EXPECT_EQ(a.total_count(), 5u);
  Histogram whole(1e-3, 10.0, 10);
  whole.add(0.01, 4);
  whole.add(0.5);
  for (std::size_t i = 0; i < a.num_bins(); ++i) {
    EXPECT_EQ(a.bin_count(i), whole.bin_count(i)) << "bin " << i;
  }
}

TEST(ShardMerge, HistogramRejectsMismatchedBinning) {
  Histogram a(1e-3, 10.0, 10);
  Histogram coarser(1e-3, 10.0, 5);
  Histogram shifted(1e-2, 10.0, 10);
  EXPECT_THROW(a += coarser, InvariantError);
  EXPECT_THROW(a += shifted, InvariantError);
}

}  // namespace
}  // namespace eas::stats
