// Tests for the string utilities and the table formatter.
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace eas::util {
namespace {

TEST(Split, PreservesEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(Split, TrailingDelimiterYieldsTrailingEmpty) {
  const auto fields = split("x,y,", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "");
}

TEST(Split, NoDelimiterYieldsWhole) {
  const auto fields = split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(Trim, RemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(ParseDouble, AcceptsPlainAndScientific) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double("-0.25"), -0.25);
  EXPECT_DOUBLE_EQ(*parse_double("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*parse_double(" 42 "), 42.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("1.5 2.0").has_value());
}

TEST(ParseInt, AcceptsSignedIntegers) {
  EXPECT_EQ(*parse_int("123"), 123);
  EXPECT_EQ(*parse_int("-9"), -9);
  EXPECT_EQ(*parse_int(" 7 "), 7);
}

TEST(ParseInt, RejectsFloatsAndGarbage) {
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int("x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(IStartsWith, IsCaseInsensitive) {
  EXPECT_TRUE(istarts_with("Hello World", "hello"));
  EXPECT_TRUE(istarts_with("ABC", "ABC"));
  EXPECT_FALSE(istarts_with("AB", "ABC"));
  EXPECT_FALSE(istarts_with("xyz", "ab"));
}

TEST(ToLower, LowersAsciiOnly) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

TEST(Table, AlignsColumnsAndUnderlinesHeader) {
  Table t({"name", "v"});
  t.row().cell("long-name").cell(1);
  t.row().cell("x").cell(12345);
  const std::string s = t.to_string();
  std::istringstream is(s);
  std::string header, underline, row1, row2;
  std::getline(is, header);
  std::getline(is, underline);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(header.find("name"), 0u);
  EXPECT_EQ(underline.find_first_not_of('-'), std::string::npos);
  // Both value cells start at the same column.
  EXPECT_EQ(row1.find('1'), row2.find('1'));
}

TEST(Table, FormatsDoublesWithRequestedPrecision) {
  Table t({"x"});
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), InvariantError);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"h"});
  EXPECT_THROW(t.cell("x"), InvariantError);
}

TEST(Table, CountsRows) {
  Table t({"h"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().cell("a");
  t.row().cell("b");
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace eas::util
