// Tests for the prediction-augmented online scheduler (§3.3 extension).
#include <gtest/gtest.h>

#include "core/cost_scheduler.hpp"
#include "core/predictive_scheduler.hpp"
#include "paper_example.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"
#include "util/check.hpp"

namespace eas::core {
namespace {

class FakeView final : public SystemView {
 public:
  explicit FakeView(placement::PlacementMap placement)
      : placement_(std::move(placement)),
        snapshots_(placement_.num_disks()) {}

  double now() const override { return now_; }
  const placement::PlacementMap& placement() const override {
    return placement_;
  }
  DiskSnapshot snapshot(DiskId k) const override { return snapshots_.at(k); }
  const disk::DiskPowerParams& power_params() const override { return power_; }

  void set_now(double t) { now_ = t; }
  DiskSnapshot& at(DiskId k) { return snapshots_.at(k); }

 private:
  placement::PlacementMap placement_;
  std::vector<DiskSnapshot> snapshots_;
  disk::DiskPowerParams power_ = testing::example_power();
  double now_ = 0.0;
};

disk::Request request_for(DataId data) {
  disk::Request r;
  r.id = 1;
  r.data = data;
  return r;
}

TEST(PredictiveScheduler, RejectsBadParams) {
  PredictiveParams p;
  p.gamma = -1.0;
  EXPECT_THROW(PredictiveCostScheduler{p}, InvariantError);
  p = {};
  p.rate_halflife_seconds = 0.0;
  EXPECT_THROW(PredictiveCostScheduler{p}, InvariantError);
}

TEST(PredictiveScheduler, RateEstimateStartsAtZeroAndDecays) {
  PredictiveCostScheduler sched;
  EXPECT_DOUBLE_EQ(sched.estimated_rate(0, 0.0), 0.0);

  FakeView view(testing::example_placement());
  sched.pick(request_for(0), view);  // b1 -> disk 0, bumps its rate
  const double just_after = sched.estimated_rate(0, 0.0);
  EXPECT_GT(just_after, 0.0);
  EXPECT_LT(sched.estimated_rate(0, 600.0), just_after / 100.0);
}

TEST(PredictiveScheduler, SteadyStreamConvergesToItsRate) {
  PredictiveParams p;
  p.rate_halflife_seconds = 20.0;
  PredictiveCostScheduler sched(p);
  FakeView view(testing::example_placement());
  // Feed b1 (only on disk 0) at exactly 2 requests/second for a while.
  for (int i = 0; i < 600; ++i) {
    view.set_now(0.5 * i);
    sched.pick(request_for(0), view);
  }
  EXPECT_NEAR(sched.estimated_rate(0, 0.5 * 599), 2.0, 0.4);
}

TEST(PredictiveScheduler, GammaZeroMatchesTheBaseHeuristic) {
  FakeView view(testing::example_placement());
  view.at(0).state = disk::DiskState::Standby;
  view.at(1).state = disk::DiskState::Active;
  view.at(3).state = disk::DiskState::Standby;

  PredictiveParams p;
  p.gamma = 0.0;
  PredictiveCostScheduler predictive(p);
  CostFunctionScheduler base(p.cost);
  for (DataId b : {1u, 2u, 4u}) {  // multi-replica data items
    EXPECT_EQ(predictive.pick(request_for(b), view),
              base.pick(request_for(b), view))
        << "data " << b;
  }
}

TEST(PredictiveScheduler, PopularityBreaksCostTies) {
  // Two standby replicas of b3 (disks 0 and 1 both cold, equal Eq.6 cost):
  // after traffic has flowed to disk 1, the predictor prefers it.
  FakeView view(testing::example_placement());
  for (auto& k : {0u, 1u, 3u}) view.at(k).state = disk::DiskState::Standby;

  PredictiveParams p;
  p.gamma = 5.0;
  PredictiveCostScheduler sched(p);
  // Warm disk 1 through b2 (lives on {0,1}): force its rate up by repeated
  // picks — the first pick may choose 0 (tie), so seed with several.
  for (int i = 0; i < 10; ++i) {
    view.set_now(i * 0.1);
    const DiskId k = sched.pick(request_for(1), view);
    (void)k;
  }
  view.set_now(1.1);
  const DiskId hot = sched.estimated_rate(1, 1.1) >
                             sched.estimated_rate(0, 1.1)
                         ? 1u
                         : 0u;
  EXPECT_EQ(sched.pick(request_for(2), view), hot);
}

TEST(PredictiveScheduler, EndToEndRunStaysValidAndCompetitive) {
  trace::SyntheticTraceConfig tc;
  tc.num_requests = 6000;
  tc.num_data = 512;
  tc.mean_rate = 8.0;
  const auto trace = trace::make_synthetic_trace(tc);
  placement::ZipfPlacementConfig pc;
  pc.num_disks = 24;
  pc.num_data = 512;
  pc.replication_factor = 3;
  const auto placement = placement::make_zipf_placement(pc);
  storage::SystemConfig cfg;

  PredictiveCostScheduler predictive;
  CostFunctionScheduler base;
  power::FixedThresholdPolicy p1, p2;
  const auto rp =
      storage::run_online(cfg, placement, trace, predictive, p1);
  const auto rb = storage::run_online(cfg, placement, trace, base, p2);
  EXPECT_EQ(rp.total_requests, trace.size());
  // The prediction term should not be a regression on a skewed workload;
  // allow a small tolerance rather than demanding strict dominance.
  EXPECT_LT(rp.total_energy(), rb.total_energy() * 1.05);
}

}  // namespace
}  // namespace eas::core
