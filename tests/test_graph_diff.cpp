// Differential suite for the heap-driven solvers (PR "CSR graphs +
// heap-driven GWMIN/set-cover").
//
// The indexed-heap GWMIN/GWMIN2 and the lazy-heap set cover each promise to
// reproduce their retained linear-scan reference *exactly* — same vertex
// sets, same selection-order weight accumulation, bit for bit — because the
// scheduling pipeline's determinism gates (sweep fingerprints, emitter
// goldens) pin the historical outputs. This binary proves the promise on
// ~200 seeded random graphs plus adversarial-tie families (quantised and
// unit weights make equal scores common, exercising the index tie-break),
// a 10k-node smoke (which the ASan preset re-runs), and replays
// core::solve_gwmin against an in-test linear-scan replica of its
// historical higher-index tie-break semantics.
//
// It also replaces global operator new with a counting shim (same pattern
// as test_sim_alloc — the shim lives in this dedicated binary) to pin the
// zero-allocation contract of warm-workspace solves.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "core/conflict_graph.hpp"
#include "graph/mwis.hpp"
#include "graph/set_cover.hpp"
#include "placement/placement.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

// GCC's inliner pairs the shim's pass-through free() against allocations it
// attributes to a non-malloc operator new and warns; the pairing is exact by
// construction (every new here funnels through malloc).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
// The nothrow forms must funnel through the same malloc, or a
// stable_sort temporary buffer (allocated nothrow) reaches the
// pass-through free() from a foreign allocator — ASan flags the mismatch.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eas {
namespace {

/// Allocations observed while running `body`.
template <typename Body>
std::uint64_t allocations_during(Body&& body) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  body();
  return g_news.load(std::memory_order_relaxed) - before;
}

enum class WeightMode {
  kContinuous,  // uniform doubles: ties essentially impossible
  kQuantised,   // weights from {1, 2, 4}: score ties common
  kUnit,        // all 1.0: maximally tie-heavy
};

graph::WeightedGraph random_graph(std::size_t n, double density,
                                  WeightMode mode, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> weights;
  for (std::size_t v = 0; v < n; ++v) {
    switch (mode) {
      case WeightMode::kContinuous:
        weights.push_back(rng.uniform(0.1, 10.0));
        break;
      case WeightMode::kQuantised:
        weights.push_back(
            static_cast<double>(1 << rng.uniform_int(0, 2)));
        break;
      case WeightMode::kUnit:
        weights.push_back(1.0);
        break;
    }
  }
  graph::WeightedGraphBuilder b(std::move(weights));
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.bernoulli(density)) b.add_edge(u, v);
    }
  }
  return b.build();
}

void expect_identical(const graph::MwisSolution& heap,
                      const graph::MwisSolution& ref, const char* what,
                      std::uint64_t seed) {
  EXPECT_EQ(heap.vertices, ref.vertices) << what << " seed " << seed;
  // Both accumulate in selection order, so even the weight is bit-equal.
  EXPECT_EQ(heap.total_weight, ref.total_weight) << what << " seed " << seed;
}

// --- explicit-graph GWMIN/GWMIN2 vs reference scan --------------------------

class GwminDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GwminDiffTest, HeapMatchesReferenceScanExactly) {
  const std::uint64_t seed = GetParam();
  // Two graphs per seed (continuous + tie-heavy quantised weights) times
  // 100 seeds = the 200-graph differential sweep; size and density vary
  // with the seed so the family covers sparse chains through near-cliques.
  const std::size_t n = 4 + static_cast<std::size_t>(seed % 61);
  const double density =
      0.02 + 0.96 * static_cast<double>(seed % 17) / 16.0;
  for (WeightMode mode : {WeightMode::kContinuous, WeightMode::kQuantised}) {
    const auto g = random_graph(n, density, mode, seed);
    expect_identical(graph::gwmin(g), graph::gwmin_reference(g), "gwmin",
                     seed);
    expect_identical(graph::gwmin2(g), graph::gwmin2_reference(g), "gwmin2",
                     seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GwminDiffTest,
                         ::testing::Range<std::uint64_t>(1, 101));

TEST(GwminDiff, AdversarialTieFamilies) {
  // Unit weights on regular-ish structures: every round is a tie, so any
  // deviation from the lowest-index rule changes the answer immediately.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto g = random_graph(32, 0.2, WeightMode::kUnit, seed);
    expect_identical(graph::gwmin(g), graph::gwmin_reference(g),
                     "gwmin/unit", seed);
    expect_identical(graph::gwmin2(g), graph::gwmin2_reference(g),
                     "gwmin2/unit", seed);
  }
  // Structured shapes: path, cycle, star, clique, isolated + zero weights.
  {
    graph::WeightedGraphBuilder b(std::vector<double>(24, 1.0));
    for (std::size_t v = 0; v + 1 < 24; ++v) b.add_edge(v, v + 1);
    const auto g = b.build();
    expect_identical(graph::gwmin(g), graph::gwmin_reference(g), "path", 0);
    expect_identical(graph::gwmin2(g), graph::gwmin2_reference(g), "path", 0);
  }
  {
    graph::WeightedGraphBuilder b(std::vector<double>(16, 2.0));
    for (std::size_t v = 0; v < 16; ++v) b.add_edge(v, (v + 1) % 16);
    const auto g = b.build();
    expect_identical(graph::gwmin(g), graph::gwmin_reference(g), "cycle", 0);
    expect_identical(graph::gwmin2(g), graph::gwmin2_reference(g), "cycle",
                     0);
  }
  {
    // Star plus isolated zero-weight vertices (gwmin2's denom==0 branch).
    graph::WeightedGraphBuilder b({1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0});
    for (std::size_t leaf = 1; leaf < 5; ++leaf) b.add_edge(0, leaf);
    const auto g = b.build();
    expect_identical(graph::gwmin(g), graph::gwmin_reference(g), "star", 0);
    expect_identical(graph::gwmin2(g), graph::gwmin2_reference(g), "star",
                     0);
  }
  {
    graph::WeightedGraphBuilder b(std::vector<double>(12, 3.0));
    for (std::size_t u = 0; u < 12; ++u) {
      for (std::size_t v = u + 1; v < 12; ++v) b.add_edge(u, v);
    }
    const auto g = b.build();
    expect_identical(graph::gwmin(g), graph::gwmin_reference(g), "clique",
                     0);
    expect_identical(graph::gwmin2(g), graph::gwmin2_reference(g), "clique",
                     0);
  }
  {
    const graph::WeightedGraph g(std::vector<double>(9, 1.0));  // edge-less
    expect_identical(graph::gwmin(g), graph::gwmin_reference(g), "isolated",
                     0);
    expect_identical(graph::gwmin2(g), graph::gwmin2_reference(g),
                     "isolated", 0);
  }
}

TEST(GwminDiff, WorkspaceReuseAcrossDifferentGraphsIsClean) {
  // A workspace warmed on a large graph must not leak stale heap positions,
  // degrees, or epoch marks into a later, smaller solve.
  graph::MwisWorkspace ws;
  graph::MwisSolution out;
  const auto big = random_graph(60, 0.3, WeightMode::kQuantised, 7);
  const auto small = random_graph(9, 0.5, WeightMode::kUnit, 8);
  for (int round = 0; round < 3; ++round) {
    graph::gwmin(big, ws, out);
    expect_identical(out, graph::gwmin_reference(big), "reuse/big", 7);
    graph::gwmin(small, ws, out);
    expect_identical(out, graph::gwmin_reference(small), "reuse/small", 8);
    graph::gwmin2(big, ws, out);
    expect_identical(out, graph::gwmin2_reference(big), "reuse2/big", 7);
    graph::gwmin2(small, ws, out);
    expect_identical(out, graph::gwmin2_reference(small), "reuse2/small", 8);
  }
}

TEST(GwminDiff, TenThousandNodeSmoke) {
  // Scale smoke (re-run under ASan by the sanitize preset): solve a 10k
  // vertex graph with both heap greedies and check the solutions satisfy
  // the independence contract and the GWMIN weight guarantee.
  const std::size_t n = 10000;
  util::Rng rng(42);
  std::vector<double> weights;
  for (std::size_t v = 0; v < n; ++v) weights.push_back(rng.uniform(0.5, 10));
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t e = 0; e < 4 * n; ++e) {
    auto u = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto v = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  graph::WeightedGraphBuilder b(std::move(weights));
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  const auto g = b.build();
  double bound = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    bound += g.weight(v) / static_cast<double>(g.degree(v) + 1);
  }
  const auto sol = graph::gwmin(g);
  EXPECT_TRUE(g.is_independent(sol.vertices));
  EXPECT_GE(sol.total_weight, bound - 1e-9);
  const auto sol2 = graph::gwmin2(g);
  EXPECT_TRUE(g.is_independent(sol2.vertices));
  EXPECT_NO_THROW(graph::check_independent(g, sol2.vertices));
}

// --- conflict-graph solve_gwmin vs linear-scan replica ----------------------

/// In-test replica of core::solve_gwmin's *historical* semantics: a full
/// linear argmax per round over (score, node id) with the HIGHER id winning
/// ties (the order a lazy max-heap of std::pair<double, uint32_t> pops),
/// degrees decremented per kill, and — critically — GWMIN2 neighbourhood
/// weights maintained by incremental subtraction in doomed-major CSR-minor
/// order, so floating-point rounding matches the production solver bit for
/// bit.
std::vector<std::uint32_t> solve_gwmin_replica(const core::ConflictGraph& g,
                                               bool use_gwmin2) {
  const std::size_t n = g.size();
  std::vector<char> alive(n, 1);
  std::vector<std::uint32_t> degree(n);
  std::vector<double> nbr_weight(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.degree(v));
    if (use_gwmin2) {
      for (std::uint32_t u : g.neighbors(v)) nbr_weight[v] += g.nodes[u].weight;
    }
  }
  auto score = [&](std::uint32_t v) {
    if (use_gwmin2) {
      const double denom = g.nodes[v].weight + nbr_weight[v];
      return denom == 0.0 ? 1.0 : g.nodes[v].weight / denom;
    }
    return g.nodes[v].weight / static_cast<double>(degree[v] + 1);
  };

  std::vector<std::uint32_t> selected;
  std::size_t remaining = n;
  while (remaining > 0) {
    bool found = false;
    double best_score = 0.0;
    std::uint32_t best = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      const double s = score(v);
      // >= keeps the later (higher) index on exact ties.
      if (!found || s >= best_score) {
        found = true;
        best_score = s;
        best = v;
      }
    }
    selected.push_back(best);
    std::vector<std::uint32_t> doomed{best};
    alive[best] = 0;
    --remaining;
    for (std::uint32_t u : g.neighbors(best)) {
      if (alive[u]) {
        alive[u] = 0;
        --remaining;
        doomed.push_back(u);
      }
    }
    for (std::uint32_t u : doomed) {
      for (std::uint32_t w : g.neighbors(u)) {
        if (!alive[w]) continue;
        --degree[w];
        if (use_gwmin2) nbr_weight[w] -= g.nodes[u].weight;
      }
    }
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

core::ConflictGraph synthetic_conflict_graph(std::size_t requests,
                                             std::uint64_t seed) {
  trace::SyntheticTraceConfig tc;
  tc.num_requests = requests;
  tc.num_data = static_cast<DataId>(requests / 2);
  tc.mean_rate = 30.0;
  tc.seed = seed;
  const auto t = trace::make_synthetic_trace(tc);
  placement::ZipfPlacementConfig pc;
  pc.num_disks = 24;
  pc.num_data = static_cast<DataId>(requests / 2);
  pc.replication_factor = 3;
  pc.seed = seed + 1;
  const auto placement = placement::make_zipf_placement(pc);
  return core::build_conflict_graph(t, placement, disk::DiskPowerParams{},
                                    {});
}

TEST(SolveGwminDiff, MatchesLinearScanReplicaOnSyntheticBatches) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const auto g = synthetic_conflict_graph(600, seed);
    ASSERT_GT(g.size(), 0u) << "seed " << seed;
    for (bool gw2 : {false, true}) {
      const auto fast = core::solve_gwmin(g, gw2);
      const auto ref = solve_gwmin_replica(g, gw2);
      EXPECT_EQ(fast, ref) << "seed " << seed << " gwmin2=" << gw2;
    }
  }
}

// --- set cover: lazy heap vs reference scan ---------------------------------

graph::SetCoverInstance random_cover(std::size_t elements, std::size_t sets,
                                     double density, bool tie_heavy,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  graph::SetCoverInstance inst;
  inst.num_elements = elements;
  inst.sets.resize(sets);
  for (auto& s : inst.sets) {
    // Tie-heavy instances quantise weights and set sizes so many sets share
    // the exact (ratio, fresh) key and selection hinges on the index rule.
    s.weight = tie_heavy ? static_cast<double>(rng.uniform_int(0, 2))
                         : rng.uniform(0.5, 10.0);
    for (std::size_t e = 0; e < elements; ++e) {
      if (rng.bernoulli(density)) s.elements.push_back(e);
    }
  }
  // One universal set guarantees feasibility.
  inst.sets.push_back({100.0, {}});
  for (std::size_t e = 0; e < elements; ++e) {
    inst.sets.back().elements.push_back(e);
  }
  return inst;
}

class SetCoverDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetCoverDiffTest, HeapMatchesReferenceScanExactly) {
  const std::uint64_t seed = GetParam();
  const std::size_t elements = 8 + (seed % 40);
  const std::size_t sets = 4 + (seed % 23);
  const double density = 0.05 + 0.5 * static_cast<double>(seed % 7) / 6.0;
  for (bool tie_heavy : {false, true}) {
    const auto inst =
        random_cover(elements, sets, density, tie_heavy, seed);
    const auto fast = graph::greedy_weighted_set_cover(inst);
    const auto ref = graph::greedy_weighted_set_cover_reference(inst);
    EXPECT_EQ(fast.chosen_sets, ref.chosen_sets)
        << "seed " << seed << " tie_heavy " << tie_heavy;
    EXPECT_EQ(fast.total_weight, ref.total_weight)
        << "seed " << seed << " tie_heavy " << tie_heavy;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverDiffTest,
                         ::testing::Range<std::uint64_t>(1, 31));

// --- zero-allocation contracts ----------------------------------------------

TEST(SolverAllocation, WarmExplicitGwminSolveIsAllocationFree) {
  const auto g = random_graph(256, 0.05, WeightMode::kContinuous, 5);
  graph::MwisWorkspace ws;
  graph::MwisSolution out;
  graph::gwmin(g, ws, out);   // warm gwmin's high-water marks
  graph::gwmin2(g, ws, out);  // …and gwmin2's
  EXPECT_EQ(allocations_during([&] { graph::gwmin(g, ws, out); }), 0u);
  EXPECT_EQ(allocations_during([&] { graph::gwmin2(g, ws, out); }), 0u);
}

TEST(SolverAllocation, WarmConflictSolveIsAllocationFree) {
  const auto g = synthetic_conflict_graph(400, 21);
  ASSERT_GT(g.size(), 0u);
  core::GwminWorkspace ws;
  std::vector<std::uint32_t> selected;
  core::solve_gwmin(g, false, ws, selected);
  core::solve_gwmin(g, true, ws, selected);
  EXPECT_EQ(
      allocations_during([&] { core::solve_gwmin(g, false, ws, selected); }),
      0u);
  EXPECT_EQ(
      allocations_during([&] { core::solve_gwmin(g, true, ws, selected); }),
      0u);
}

}  // namespace
}  // namespace eas
