// Parameterized property tests for the disk model: across a family of power
// configurations, the DES disk's energy accounting must agree with direct
// integration of its state timeline, and single-disk behaviour must match
// the analytic Lemma-1 evaluator.
#include <gtest/gtest.h>

#include <vector>

#include "core/offline_eval.hpp"
#include "core/scheduler.hpp"
#include "disk/disk.hpp"
#include "power/fixed_threshold.hpp"
#include "power/oracle.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace eas::disk {
namespace {

struct PowerCase {
  const char* label;
  DiskPowerParams params;
};

std::vector<PowerCase> power_cases() {
  std::vector<PowerCase> cases;
  {
    PowerCase c{"barracuda", {}};
    cases.push_back(c);
  }
  {
    PowerCase c{"fast-transitions", {}};
    c.params.spinup_seconds = 1.0;
    c.params.spindown_seconds = 0.5;
    c.params.spinup_watts = 15.0;
    cases.push_back(c);
  }
  {
    PowerCase c{"high-idle", {}};
    c.params.idle_watts = 12.0;
    c.params.active_watts = 14.0;
    cases.push_back(c);
  }
  {
    PowerCase c{"cheap-standby", {}};
    c.params.standby_watts = 0.0;
    cases.push_back(c);
  }
  {
    PowerCase c{"forced-breakeven", {}};
    c.params.breakeven_override_seconds = 12.0;
    cases.push_back(c);
  }
  return cases;
}

class DiskPowerCaseTest : public ::testing::TestWithParam<PowerCase> {};

TEST_P(DiskPowerCaseTest, EnergyEqualsPowerTimesResidency) {
  const auto& p = GetParam().params;
  sim::Simulator sim;
  Disk d(0, sim, p, DiskPerfParams{}, DiskState::Standby);
  util::Rng rng(5);

  // Random request schedule with gaps spanning all Lemma-1 cases.
  power::FixedThresholdPolicy policy;
  d.set_idle_callback([&](Disk& disk) { policy.on_disk_idle(sim, disk); });
  double t = 1.0;
  for (int i = 0; i < 40; ++i) {
    t += rng.uniform(0.5, 2.5 * p.saving_window_seconds());
    sim.schedule_at(t, [&d, &policy, &sim, i] {
      Request r;
      r.id = static_cast<RequestId>(i);
      policy.on_disk_activity(sim, d);
      d.submit(r);
    });
  }
  sim.run();
  d.finalize(sim.now());

  const auto& st = d.stats();
  const double watts[kNumDiskStates] = {
      p.standby_watts, p.spinup_watts, p.idle_watts, p.active_watts,
      p.spindown_watts};
  double expected = 0.0;
  for (int s = 0; s < kNumDiskStates; ++s) {
    expected += st.seconds_in_state[s] * watts[s];
  }
  EXPECT_NEAR(st.total_joules(), expected, 1e-6);
  EXPECT_NEAR(st.total_seconds(), sim.now(), 1e-9);
  EXPECT_EQ(st.requests_served, 40u);
  // A settled disk has paired transitions (started in standby).
  EXPECT_EQ(st.spin_ups, st.spin_downs + (d.state() != DiskState::Standby &&
                                                  d.state() != DiskState::SpinningDown
                                              ? 1u
                                              : 0u));
}

TEST_P(DiskPowerCaseTest, OracleSingleDiskMatchesAnalyticEvaluator) {
  const auto& p = GetParam().params;
  util::Rng rng(11);
  std::vector<trace::TraceRecord> recs;
  double t = p.spinup_seconds + 1.0;
  for (int i = 0; i < 30; ++i) {
    t += rng.uniform(0.5, 2.0 * p.saving_window_seconds());
    recs.push_back({t, 0, 4096, true});
  }
  const trace::Trace trace(std::move(recs));

  core::OfflineAssignment a;
  a.disk_of_request.assign(trace.size(), 0);

  // DES run: one disk driven by the oracle policy.
  sim::Simulator sim;
  Disk d(0, sim, p, DiskPerfParams{}, DiskState::Standby);
  power::OraclePolicy policy(a.arrivals_by_disk(trace, 1));
  d.set_idle_callback([&](Disk& disk) { policy.on_disk_idle(sim, disk); });
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim.schedule_at(trace[i].time, [&, i] {
      Request r;
      r.id = i;
      policy.on_disk_activity(sim, d);
      d.submit(r);
    });
  }
  std::vector<Disk*> disks{&d};
  policy.on_run_start(sim, disks);
  sim.run();

  const double horizon = sim.now();
  d.finalize(horizon);
  const auto analytic = core::evaluate_offline(trace, a, 1, p, horizon);

  EXPECT_EQ(d.stats().spin_ups, analytic.disk_stats[0].spin_ups);
  EXPECT_EQ(d.stats().spin_downs, analytic.disk_stats[0].spin_downs);
  // Active time is the only modelled difference (analytic treats I/O as
  // instantaneous); with 4 KB requests it is sub-permille.
  EXPECT_NEAR(d.stats().total_joules(),
              analytic.disk_stats[0].total_joules(),
              0.005 * analytic.disk_stats[0].total_joules() + 5.0)
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(PowerModels, DiskPowerCaseTest,
                         ::testing::ValuesIn(power_cases()),
                         [](const ::testing::TestParamInfo<PowerCase>& param) {
                           std::string name = param.param.label;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace eas::disk
