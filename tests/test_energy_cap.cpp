// Tests for the idle-extension cap in Eq. 5 (see energy_model.cpp): under
// 2CPM a disk never idles past breakeven, so the cap is invisible there;
// under pinning/oracle policies it keeps long-idle disks from looking more
// expensive than waking a sleeping one.
#include <gtest/gtest.h>

#include "core/energy_model.hpp"

namespace eas::core {
namespace {

disk::DiskPowerParams power() {
  disk::DiskPowerParams p;
  p.idle_watts = 10.0;
  p.active_watts = 12.0;
  p.standby_watts = 1.0;
  p.spinup_watts = 20.0;
  p.spindown_watts = 10.0;
  p.spinup_seconds = 6.0;
  p.spindown_seconds = 4.0;  // breakeven 16 s, wake cycle 320 J
  return p;
}

TEST(IdleCap, BelowBreakevenTheCapIsInvisible) {
  DiskSnapshot s;
  s.state = disk::DiskState::Idle;
  s.last_request_time = 100.0;
  for (double dt : {0.0, 1.0, 8.0, 15.9}) {
    EXPECT_DOUBLE_EQ(marginal_energy_cost(s, 100.0 + dt, power()),
                     dt * power().idle_watts);
  }
}

TEST(IdleCap, LongIdleDisksCostAtMostOneWakeCycle) {
  DiskSnapshot s;
  s.state = disk::DiskState::Idle;
  s.last_request_time = 0.0;
  const double cap = power().transition_energy() +
                     power().breakeven_seconds() * power().idle_watts;
  for (double now : {32.0, 100.0, 10000.0}) {
    EXPECT_DOUBLE_EQ(marginal_energy_cost(s, now, power()), cap);
  }
}

TEST(IdleCap, PinnedIdleDiskNeverBeatenByStandby) {
  // The property that motivated the cap: at any idle age, scheduling on the
  // idle disk must cost no more than waking a standby disk.
  DiskSnapshot idle;
  idle.state = disk::DiskState::Idle;
  idle.last_request_time = 0.0;
  DiskSnapshot standby;
  standby.state = disk::DiskState::Standby;
  for (double now = 0.5; now < 200.0; now += 0.5) {
    EXPECT_LE(marginal_energy_cost(idle, now, power()),
              marginal_energy_cost(standby, now, power()) + 1e-12)
        << "now=" << now;
  }
}

TEST(IdleCap, CostIsMonotoneNonDecreasingInIdleAge) {
  DiskSnapshot s;
  s.state = disk::DiskState::Idle;
  s.last_request_time = 0.0;
  double prev = 0.0;
  for (double now = 0.0; now < 100.0; now += 0.25) {
    const double c = marginal_energy_cost(s, now, power());
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

}  // namespace
}  // namespace eas::core
