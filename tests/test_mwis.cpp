// Tests for the MWIS algorithms: explicit CSR graph + builder, GWMIN
// variants, exact branch-and-bound, randomized cross-validation and the
// GWMIN lower bound. (The heap-vs-reference differential suite lives in
// test_graph_diff.cpp.)
#include <gtest/gtest.h>

#include <initializer_list>
#include <utility>

#include "graph/mwis.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace eas::graph {
namespace {

WeightedGraph make_graph(
    std::vector<double> weights,
    std::initializer_list<std::pair<std::size_t, std::size_t>> edges) {
  WeightedGraphBuilder b(std::move(weights));
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

WeightedGraph path_graph(std::vector<double> weights) {
  WeightedGraphBuilder b(std::move(weights));
  for (std::size_t v = 0; v + 1 < b.size(); ++v) b.add_edge(v, v + 1);
  return b.build();
}

TEST(WeightedGraph, EdgeBookkeeping) {
  const auto g = make_graph({1.0, 2.0, 3.0}, {{0, 1}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(WeightedGraph, RejectsSelfLoopsRangeAndBadWeights) {
  WeightedGraphBuilder b({1.0, 1.0});
  b.add_edge(0, 1);
  EXPECT_THROW(b.add_edge(1, 1), InvariantError);  // self-loop: O(1), always
  EXPECT_THROW(b.add_edge(0, 2), InvariantError);  // out of range: always
  EXPECT_THROW(WeightedGraphBuilder({-1.0}), InvariantError);
  EXPECT_THROW(WeightedGraph({-1.0}), InvariantError);
}

TEST(WeightedGraph, DuplicateEdgesCaughtByBuildAudit) {
  // The O(deg) per-insertion duplicate probe is gone; duplicates are now a
  // bulk audit-tier contract at build time.
  WeightedGraphBuilder b({1.0, 1.0});
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge, reversed spelling
  if constexpr (audit_enabled()) {
    EXPECT_THROW(b.build(), InvariantError);
  } else {
    EXPECT_NO_THROW(b.build());
  }
}

TEST(WeightedGraph, AdoptsAPrebuiltCsr) {
  // Triangle 0-1-2 handed over as raw CSR arrays (the to_weighted_graph
  // fast path).
  const WeightedGraph g({1.0, 2.0, 3.0}, {0, 2, 4, 6},
                        {1, 2, 0, 2, 0, 1});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.is_independent({0, 1}));
}

TEST(WeightedGraph, RejectsMalformedCsrShape) {
  // Shape errors throw in every build tier.
  EXPECT_THROW(WeightedGraph({1.0, 1.0}, {0, 1}, {1}), InvariantError);
  EXPECT_THROW(WeightedGraph({1.0, 1.0}, {0, 1, 3}, {1, 0}), InvariantError);
}

TEST(WeightedGraph, AuditRejectsAsymmetricCsr) {
  if constexpr (audit_enabled()) {
    // 0 lists 1 but 1 does not list 0.
    EXPECT_THROW(WeightedGraph({1.0, 1.0}, {0, 1, 1}, {1}), InvariantError);
  } else {
    GTEST_SKIP() << "structural CSR audit is compiled out in this tier";
  }
}

TEST(WeightedGraph, IndependenceCheck) {
  const auto g = make_graph({1, 1, 1}, {{0, 1}});
  EXPECT_TRUE(g.is_independent({0, 2}));
  EXPECT_FALSE(g.is_independent({0, 1}));
  EXPECT_FALSE(g.is_independent({0, 0}));  // duplicates rejected
  EXPECT_TRUE(g.is_independent({}));
}

TEST(ExactMwis, EmptyGraphGivesEmptySolution) {
  WeightedGraph g({});
  const auto sol = exact_mwis(g);
  EXPECT_TRUE(sol.vertices.empty());
  EXPECT_DOUBLE_EQ(sol.total_weight, 0.0);
}

TEST(ExactMwis, IsolatedVerticesAllTaken) {
  WeightedGraph g({1.0, 2.0, 3.0});
  const auto sol = exact_mwis(g);
  EXPECT_DOUBLE_EQ(sol.total_weight, 6.0);
  EXPECT_EQ(sol.vertices.size(), 3u);
}

TEST(ExactMwis, PathGraphAlternation) {
  // Path 1-2-3-4-5 with unit weights: optimum takes vertices 0,2,4.
  const auto g = path_graph({1, 1, 1, 1, 1});
  const auto sol = exact_mwis(g);
  EXPECT_DOUBLE_EQ(sol.total_weight, 3.0);
  EXPECT_TRUE(g.is_independent(sol.vertices));
}

TEST(ExactMwis, WeightBeatsCardinality) {
  // Star: heavy centre vs three light leaves.
  const auto g = make_graph({10.0, 1.0, 1.0, 1.0}, {{0, 1}, {0, 2}, {0, 3}});
  const auto sol = exact_mwis(g);
  EXPECT_DOUBLE_EQ(sol.total_weight, 10.0);
  EXPECT_EQ(sol.vertices, (std::vector<std::size_t>{0}));
}

TEST(ExactMwis, RefusesOversizedGraphs) {
  WeightedGraph g(std::vector<double>(100, 1.0));
  EXPECT_THROW(exact_mwis(g, 48), InvariantError);
}

TEST(Gwmin, SolutionsAreAlwaysIndependent) {
  const auto g = path_graph({5, 4, 3, 2, 1, 2, 3, 4, 5});
  const auto sol = gwmin(g);
  EXPECT_TRUE(g.is_independent(sol.vertices));
  EXPECT_DOUBLE_EQ(sol.total_weight, g.total_weight(sol.vertices));
}

TEST(Gwmin, TakesTheHeavyIsolatedVertexFirst) {
  const auto g = make_graph({100.0, 1.0, 1.0}, {{1, 2}});
  const auto sol = gwmin(g);
  EXPECT_TRUE(g.is_independent(sol.vertices));
  EXPECT_GE(sol.total_weight, 101.0);
}

TEST(Gwmin2, HandlesZeroWeightGraphs) {
  const auto g = make_graph({0.0, 0.0}, {{0, 1}});
  const auto sol = gwmin2(g);
  EXPECT_TRUE(g.is_independent(sol.vertices));
  EXPECT_EQ(sol.vertices.size(), 1u);
}

class RandomMwisTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMwisTest, GreediesAreIndependentBoundedAndBelowExact) {
  util::Rng rng(GetParam());
  const std::size_t n = 14;
  std::vector<double> weights;
  for (std::size_t v = 0; v < n; ++v) weights.push_back(rng.uniform(0.5, 10.0));
  WeightedGraphBuilder b(std::move(weights));
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.bernoulli(0.3)) b.add_edge(u, v);
    }
  }
  const auto g = b.build();

  const auto exact = exact_mwis(g);
  EXPECT_TRUE(g.is_independent(exact.vertices));

  for (const auto& sol : {gwmin(g), gwmin2(g)}) {
    EXPECT_TRUE(g.is_independent(sol.vertices));
    EXPECT_LE(sol.total_weight, exact.total_weight + 1e-9);
  }

  // Sakai et al.'s guarantee: GWMIN >= sum_v w(v) / (d(v)+1).
  double bound = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    bound += g.weight(v) / static_cast<double>(g.degree(v) + 1);
  }
  EXPECT_GE(gwmin(g).total_weight, bound - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMwisTest,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(ExactMwis, MatchesBruteForceOnTinyGraphs) {
  // Exhaustive 2^n verification for n = 10 over a few seeds.
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    util::Rng rng(seed);
    const std::size_t n = 10;
    std::vector<double> weights;
    for (std::size_t v = 0; v < n; ++v) weights.push_back(rng.uniform(0, 5));
    WeightedGraphBuilder b(std::move(weights));
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        if (rng.bernoulli(0.4)) b.add_edge(u, v);
      }
    }
    const auto g = b.build();
    double best = 0.0;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      std::vector<std::size_t> verts;
      for (std::size_t v = 0; v < n; ++v) {
        if (mask & (1u << v)) verts.push_back(v);
      }
      if (g.is_independent(verts)) {
        best = std::max(best, g.total_weight(verts));
      }
    }
    EXPECT_NEAR(exact_mwis(g).total_weight, best, 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace eas::graph
