// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace eas::sim {
namespace {

TEST(Simulator, StartsAtTimeZeroWithEmptyQueue) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(7.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(Simulator, ScheduleInUsesRelativeDelay) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(3.0, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), InvariantError);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), InvariantError);
}

TEST(Simulator, NonFiniteTimeThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(kTimeInfinity, [] {}), InvariantError);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, Simulator::Callback{}), InvariantError);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(h));
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.pending(h));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndNullSafe) {
  Simulator sim;
  EventHandle h = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, CancelledEventsDoNotCountAsPending) {
  Simulator sim;
  EventHandle h = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  EXPECT_EQ(sim.run(), 100u);
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulator, EventsCanCancelOtherEvents) {
  Simulator sim;
  bool victim_fired = false;
  EventHandle victim = sim.schedule_at(2.0, [&] { victim_fired = true; });
  sim.schedule_at(1.0, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(victim_fired);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  EXPECT_EQ(sim.run_until(2.0), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(42.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, NextEventTimeReflectsLiveEvents) {
  Simulator sim;
  // Genuinely const: no tombstones to lazily drop, so the query must
  // compile and answer through a const ref (the old kernel const_cast away
  // constness to clean the queue here).
  const Simulator& csim = sim;
  EXPECT_DOUBLE_EQ(csim.next_event_time(), kTimeInfinity);
  EventHandle h = sim.schedule_at(5.0, [] {});
  sim.schedule_at(9.0, [] {});
  EXPECT_DOUBLE_EQ(csim.next_event_time(), 5.0);
  sim.cancel(h);
  EXPECT_DOUBLE_EQ(csim.next_event_time(), 9.0);
}

TEST(Simulator, EventsFiredAccumulates) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  for (int i = 5; i < 8; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 8u);
}

}  // namespace
}  // namespace eas::sim
