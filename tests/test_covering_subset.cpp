// Tests for the covering-subset power policy ([16]/[14]-style, §1).
#include <gtest/gtest.h>

#include "core/cost_scheduler.hpp"
#include "paper_example.hpp"
#include "power/covering_subset.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"

namespace eas::power {
namespace {

TEST(CoveringSubset, CoversEveryDataItem) {
  const auto placement = testing::example_placement();
  CoveringSubsetPolicy policy(placement);
  for (DataId b = 0; b < placement.num_data(); ++b) {
    bool covered = false;
    for (DiskId k : placement.locations(b)) {
      if (policy.is_covering(k)) covered = true;
    }
    EXPECT_TRUE(covered) << "data " << b;
  }
}

TEST(CoveringSubset, FindsTheMinimumCoverOnThePaperInstance) {
  // d1 + (d3 or d4) covers b1..b6; no single disk does.
  CoveringSubsetPolicy policy(testing::example_placement());
  EXPECT_EQ(policy.covering_size(), 2u);
  EXPECT_TRUE(policy.is_covering(0));
}

TEST(CoveringSubset, PinnedDisksNeverSpinDown) {
  sim::Simulator sim;
  const auto placement = testing::example_placement();
  CoveringSubsetPolicy policy(placement);

  disk::DiskPowerParams power;  // breakeven ~30.8 s
  disk::Disk pinned(0, sim, power, {}, disk::DiskState::Idle);
  ASSERT_TRUE(policy.is_covering(0));
  policy.on_disk_idle(sim, pinned);
  sim.run_until(1000.0);
  EXPECT_EQ(pinned.state(), disk::DiskState::Idle);
  EXPECT_EQ(pinned.stats().spin_downs, 0u);
}

TEST(CoveringSubset, NonPinnedDisksFollow2cpm) {
  sim::Simulator sim;
  const auto placement = testing::example_placement();
  CoveringSubsetPolicy policy(placement);
  // Find a non-covering disk (d2 = index 1 is never needed for a cover).
  ASSERT_FALSE(policy.is_covering(1));

  disk::DiskPowerParams power;
  disk::Disk d(1, sim, power, {}, disk::DiskState::Idle);
  policy.on_disk_idle(sim, d);
  sim.run_until(power.breakeven_seconds() + power.spindown_seconds + 1.0);
  EXPECT_EQ(d.state(), disk::DiskState::Standby);
}

TEST(CoveringSubset, RunStartWakesTheCoveringDisks) {
  sim::Simulator sim;
  const auto placement = testing::example_placement();
  CoveringSubsetPolicy policy(placement);

  disk::DiskPowerParams power;
  std::vector<std::unique_ptr<disk::Disk>> disks;
  std::vector<disk::Disk*> ptrs;
  for (DiskId k = 0; k < 4; ++k) {
    disks.push_back(std::make_unique<disk::Disk>(k, sim, power,
                                                 disk::DiskPerfParams{},
                                                 disk::DiskState::Standby));
    ptrs.push_back(disks.back().get());
  }
  policy.on_run_start(sim, ptrs);
  sim.run();
  for (DiskId k = 0; k < 4; ++k) {
    if (policy.is_covering(k)) {
      EXPECT_EQ(disks[k]->state(), disk::DiskState::Idle) << "disk " << k;
    } else {
      EXPECT_EQ(disks[k]->state(), disk::DiskState::Standby) << "disk " << k;
    }
  }
}

TEST(CoveringSubset, EliminatesSpinUpWaitsOnReads) {
  // With a covering subset always spinning, the pure-energy heuristic
  // (alpha = 1: a sleeping disk always costs more than any spinning one)
  // never needs to wake a disk. The default alpha = 0.2 would occasionally
  // prefer an empty sleeping replica over a queued spinning one — the
  // covering subset guarantees availability, not that a latency-weighted
  // scheduler uses it.
  placement::ZipfPlacementConfig pc;
  pc.num_disks = 16;
  pc.num_data = 256;
  pc.replication_factor = 3;
  const auto placement = placement::make_zipf_placement(pc);

  trace::SyntheticTraceConfig tc;
  tc.num_requests = 3000;
  tc.num_data = 256;
  tc.mean_rate = 5.0;
  const auto trace = trace::make_synthetic_trace(tc);

  storage::SystemConfig cfg;
  cfg.initial_state = disk::DiskState::Idle;  // covering disks booted first
  core::CostFunctionScheduler sched(core::CostParams{1.0, 100.0});
  CoveringSubsetPolicy policy(placement);
  const auto r = storage::run_online(cfg, placement, trace, sched, policy);
  EXPECT_EQ(r.total_requests, trace.size());
  EXPECT_EQ(r.requests_waited_spinup, 0u);
  // Response stays at the service floor.
  EXPECT_LT(r.response_times.p90(), 0.1);
}

TEST(CoveringSubset, TradesEnergyForAvailabilityVersusPlain2cpm) {
  placement::ZipfPlacementConfig pc;
  pc.num_disks = 16;
  pc.num_data = 256;
  pc.replication_factor = 2;
  const auto placement = placement::make_zipf_placement(pc);
  trace::SyntheticTraceConfig tc;
  tc.num_requests = 4000;
  tc.num_data = 256;
  tc.mean_rate = 3.0;  // very sparse: plain 2CPM sleeps aggressively
  const auto trace = trace::make_synthetic_trace(tc);
  storage::SystemConfig cfg;
  cfg.initial_state = disk::DiskState::Idle;

  const core::CostParams energy_only{1.0, 100.0};
  core::CostFunctionScheduler s1(energy_only), s2(energy_only);
  FixedThresholdPolicy plain;
  CoveringSubsetPolicy covering(placement);
  const auto r_plain = storage::run_online(cfg, placement, trace, s1, plain);
  const auto r_cover =
      storage::run_online(cfg, placement, trace, s2, covering);

  // Pinning disks costs energy but buys the latency guarantee.
  EXPECT_GE(r_cover.total_energy(), r_plain.total_energy() * 0.95);
  EXPECT_LT(r_cover.response_times.p90(), r_plain.response_times.quantile(1.0));
  EXPECT_EQ(r_cover.requests_waited_spinup, 0u);
}

}  // namespace
}  // namespace eas::power
