// Shared mid-scale integration harness: a reduced version of the paper's
// §4 configuration (60 disks, 8,000 Cello-like requests) swept over
// replication factors 1..5 for all six scheduler rows. The sweep is run
// once per test binary and cached.
#pragma once

#include <map>
#include <string>

#include "core/basic_schedulers.hpp"
#include "core/cost_scheduler.hpp"
#include "core/mwis_scheduler.hpp"
#include "core/wsc_scheduler.hpp"
#include "placement/placement.hpp"
#include "power/fixed_threshold.hpp"
#include "storage/storage_system.hpp"
#include "trace/synthetic.hpp"
#include "util/check.hpp"

namespace eas::integration {

inline constexpr std::size_t kNumRequests = 8000;
inline constexpr DiskId kNumDisks = 60;

inline const disk::DiskPowerParams& power() {
  static const disk::DiskPowerParams p{};  // production Barracuda model
  return p;
}

struct RfSweep {
  std::map<std::pair<unsigned, std::string>, storage::RunResult> results;

  const storage::RunResult& at(unsigned rf, const std::string& sched) const {
    const auto it = results.find({rf, sched});
    EAS_CHECK_MSG(it != results.end(), "missing run " << sched << "@" << rf);
    return it->second;
  }
};

inline trace::Trace integration_trace() {
  trace::SyntheticTraceConfig cfg = trace::cello_like_config(5);
  cfg.num_requests = kNumRequests;
  cfg.num_data = 4096;
  // Scale the 35 req/s fleet-wide rate down with the fleet (60/180 disks)
  // so per-disk load matches the full-scale experiments.
  cfg.mean_rate = 12.0;
  return trace::make_synthetic_trace(cfg);
}

inline placement::PlacementMap integration_placement(unsigned rf) {
  placement::ZipfPlacementConfig cfg;
  cfg.num_disks = kNumDisks;
  cfg.num_data = 4096;
  cfg.replication_factor = rf;
  cfg.zipf_z = 1.0;
  cfg.seed = 42;
  return placement::make_zipf_placement(cfg);
}

inline RfSweep run_rf_sweep() {
  RfSweep sweep;
  const auto trace = integration_trace();
  storage::SystemConfig cfg;  // defaults: paper disk model, standby start
  for (unsigned rf = 1; rf <= 5; ++rf) {
    const auto placement = integration_placement(rf);

    sweep.results.emplace(
        std::make_pair(rf, "always-on"),
        storage::run_always_on(cfg, placement, trace));
    {
      core::RandomScheduler sched(99);
      power::FixedThresholdPolicy policy;
      sweep.results.emplace(
          std::make_pair(rf, "random"),
          storage::run_online(cfg, placement, trace, sched, policy));
    }
    {
      core::StaticScheduler sched;
      power::FixedThresholdPolicy policy;
      sweep.results.emplace(
          std::make_pair(rf, "static"),
          storage::run_online(cfg, placement, trace, sched, policy));
    }
    {
      core::CostFunctionScheduler sched;  // alpha=0.2, beta=100
      power::FixedThresholdPolicy policy;
      sweep.results.emplace(
          std::make_pair(rf, "heuristic"),
          storage::run_online(cfg, placement, trace, sched, policy));
    }
    {
      core::WscBatchScheduler sched(0.1);
      power::FixedThresholdPolicy policy;
      sweep.results.emplace(
          std::make_pair(rf, "wsc"),
          storage::run_batch(cfg, placement, trace, sched, policy));
    }
    {
      core::MwisOptions opts;
      opts.graph.successor_horizon = 3;
      opts.refine_passes = 5;
      core::MwisOfflineScheduler sched(opts);
      const auto assignment = sched.schedule(trace, placement, cfg.power);
      sweep.results.emplace(
          std::make_pair(rf, "mwis"),
          storage::run_offline(cfg, placement, trace, assignment,
                               sched.name()));
    }
  }
  return sweep;
}

}  // namespace eas::integration
