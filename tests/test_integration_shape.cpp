// Mid-scale integration tests asserting the paper's *shape* claims on a
// reduced configuration (60 disks, 8,000 requests) — large enough for the
// orderings to be stable, small enough for CI.
#include <gtest/gtest.h>

#include "common_integration.hpp"

namespace eas {
namespace {

class ShapeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runs_ = new integration::RfSweep(integration::run_rf_sweep());
  }
  static void TearDownTestSuite() {
    delete runs_;
    runs_ = nullptr;
  }
  static const integration::RfSweep& runs() { return *runs_; }

 private:
  static integration::RfSweep* runs_;
};

integration::RfSweep* ShapeFixture::runs_ = nullptr;

TEST_F(ShapeFixture, StaticEnergyIsFlatAcrossReplication) {
  // Fig 6: Static ignores replicas entirely.
  const double base = runs().at(1, "static").normalized_energy(
      integration::power());
  for (unsigned rf : {2u, 3u, 5u}) {
    EXPECT_NEAR(
        runs().at(rf, "static").normalized_energy(integration::power()), base,
        0.05)
        << "rf " << rf;
  }
}

TEST_F(ShapeFixture, RandomEnergyClimbsTowardAlwaysOn) {
  // Fig 6: spreading load keeps every disk awake.
  const auto& p = integration::power();
  EXPECT_GT(runs().at(5, "random").normalized_energy(p),
            runs().at(1, "random").normalized_energy(p) + 0.05);
  EXPECT_GT(runs().at(5, "random").normalized_energy(p), 0.85);
}

TEST_F(ShapeFixture, EnergyAwareRowsFallMonotonicallyWithReplication) {
  const auto& p = integration::power();
  for (const char* sched : {"heuristic", "wsc", "mwis"}) {
    const double rf1 = runs().at(1, sched).normalized_energy(p);
    const double rf3 = runs().at(3, sched).normalized_energy(p);
    const double rf5 = runs().at(5, sched).normalized_energy(p);
    EXPECT_LT(rf3, rf1 + 0.02) << sched;
    EXPECT_LT(rf5, rf3 + 0.02) << sched;
    EXPECT_LT(rf5, rf1 - 0.05) << sched;  // a real drop, not noise
  }
}

TEST_F(ShapeFixture, EnergyAwareBeatsObliviousAtRf3) {
  // The paper's headline comparison (§5.1).
  const auto& p = integration::power();
  const double random = runs().at(3, "random").normalized_energy(p);
  const double stat = runs().at(3, "static").normalized_energy(p);
  for (const char* sched : {"heuristic", "wsc", "mwis"}) {
    const double e = runs().at(3, sched).normalized_energy(p);
    EXPECT_LT(e, random - 0.05) << sched;
    EXPECT_LT(e, stat) << sched;
  }
}

TEST_F(ShapeFixture, MwisIsTheBestEnergyRowAtHighReplication) {
  const auto& p = integration::power();
  const double mwis = runs().at(5, "mwis").normalized_energy(p);
  EXPECT_LE(mwis,
            runs().at(5, "heuristic").normalized_energy(p) + 0.02);
  EXPECT_LE(mwis, runs().at(5, "wsc").normalized_energy(p) + 0.02);
}

TEST_F(ShapeFixture, EnergyAwareSchedulingAlsoCutsResponseTime) {
  // Fig 8: fewer spin-ups => fewer 10 s wake penalties.
  EXPECT_LT(runs().at(3, "heuristic").mean_response(),
            runs().at(3, "static").mean_response());
  EXPECT_LT(runs().at(3, "heuristic").mean_response(),
            runs().at(3, "random").mean_response());
}

TEST_F(ShapeFixture, WscCarriesTheBatchingDelay) {
  // Fig 8/13: WSC trails the heuristic by roughly the batch interval.
  EXPECT_GT(runs().at(3, "wsc").mean_response(),
            runs().at(3, "heuristic").mean_response());
}

TEST_F(ShapeFixture, OfflineModelAvoidsSpinUpWaits) {
  // Fig 12/13: MWIS (oracle pre-spins) has no wake tail.
  const auto& mwis = runs().at(3, "mwis");
  EXPECT_LT(static_cast<double>(mwis.requests_waited_spinup) /
                static_cast<double>(mwis.total_requests),
            0.01);
  EXPECT_LT(mwis.response_times.p90(), 0.2);
}

TEST_F(ShapeFixture, MwisNeedsFewerSpinCyclesAtRf1) {
  // Fig 7: with no routing freedom, only the offline model can still avoid
  // wake-ups (it pre-spins and skips unprofitable sleeps).
  EXPECT_LT(runs().at(1, "mwis").total_spin_ups() +
                runs().at(1, "mwis").total_spin_downs(),
            runs().at(1, "static").total_spin_ups() +
                runs().at(1, "static").total_spin_downs());
}

TEST_F(ShapeFixture, AlwaysOnNeverTransitions) {
  for (unsigned rf : {1u, 3u, 5u}) {
    EXPECT_EQ(runs().at(rf, "always-on").total_spin_ups(), 0u);
    EXPECT_EQ(runs().at(rf, "always-on").total_spin_downs(), 0u);
  }
}

TEST_F(ShapeFixture, EveryRunServesTheWholeTrace) {
  for (unsigned rf : {1u, 2u, 3u, 4u, 5u}) {
    for (const char* sched :
         {"always-on", "random", "static", "heuristic", "wsc", "mwis"}) {
      EXPECT_EQ(runs().at(rf, sched).total_requests,
                integration::kNumRequests)
          << sched << " rf " << rf;
    }
  }
}

}  // namespace
}  // namespace eas
